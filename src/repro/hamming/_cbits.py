"""The ``cbits`` kernel backend: fused C popcount/XOR loops via ctypes.

No new Python dependency: a ~60-line C source embedded below is compiled
once per (source, compiler, flags) digest with the *system* C compiler
into a shared library cached under the temp directory, then loaded with
``ctypes``.  ``__builtin_popcountll`` maps to the hardware popcount, and
fusing XOR+popcount+accumulate into one loop removes the intermediate
XOR/count arrays the NumPy reference has to materialize per chunk.

OpenMP is used when the compiler supports it (``-fopenmp`` is tried
first, then dropped): every parallel loop writes disjoint ``out[i]``
slots with integer-only arithmetic, so results are deterministic and
bitwise-identical regardless of thread count.

Availability is decided at import by :mod:`repro.hamming.kernels`'
discovery: ``build_backend()`` raising (no compiler, sandboxed tmp,
``REPRO_NO_CBITS=1``) just records the reason and leaves the seam on
``reference``.  A successfully built library must still pass the
differential self-check before it registers.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.hamming.kernels import KernelBackend

__all__ = ["CBitsBackend", "build_backend"]

_SOURCE = r"""
#include <stdint.h>

#define PAR_THRESHOLD 262144  /* words; below this, threading overhead loses */

void repro_popcount_rows(const uint64_t *rows, int64_t m, int64_t w,
                         int64_t *out) {
#pragma omp parallel for schedule(static) if (m * w > PAR_THRESHOLD)
    for (int64_t i = 0; i < m; i++) {
        const uint64_t *row = rows + i * w;
        int64_t acc = 0;
        for (int64_t j = 0; j < w; j++)
            acc += __builtin_popcountll(row[j]);
        out[i] = acc;
    }
}

int64_t repro_hamming_distance(const uint64_t *x, const uint64_t *y,
                               int64_t w) {
    int64_t acc = 0;
    for (int64_t j = 0; j < w; j++)
        acc += __builtin_popcountll(x[j] ^ y[j]);
    return acc;
}

void repro_one_to_many(const uint64_t *x, const uint64_t *rows, int64_t m,
                       int64_t w, int64_t *out) {
#pragma omp parallel for schedule(static) if (m * w > PAR_THRESHOLD)
    for (int64_t i = 0; i < m; i++) {
        const uint64_t *row = rows + i * w;
        int64_t acc = 0;
        for (int64_t j = 0; j < w; j++)
            acc += __builtin_popcountll(x[j] ^ row[j]);
        out[i] = acc;
    }
}

void repro_cross(const uint64_t *a, int64_t ma, const uint64_t *b, int64_t mb,
                 int64_t w, int64_t *out) {
#pragma omp parallel for schedule(static) if (ma * mb * w > PAR_THRESHOLD)
    for (int64_t i = 0; i < ma; i++) {
        const uint64_t *ra = a + i * w;
        int64_t *row_out = out + i * mb;
        for (int64_t k = 0; k < mb; k++) {
            const uint64_t *rb = b + k * w;
            int64_t acc = 0;
            for (int64_t j = 0; j < w; j++)
                acc += __builtin_popcountll(ra[j] ^ rb[j]);
            row_out[k] = acc;
        }
    }
}

void repro_paired(const uint64_t *a, const uint64_t *b, int64_t m, int64_t w,
                  int64_t *out) {
#pragma omp parallel for schedule(static) if (m * w > PAR_THRESHOLD)
    for (int64_t i = 0; i < m; i++) {
        const uint64_t *ra = a + i * w;
        const uint64_t *rb = b + i * w;
        int64_t acc = 0;
        for (int64_t j = 0; j < w; j++)
            acc += __builtin_popcountll(ra[j] ^ rb[j]);
        out[i] = acc;
    }
}
"""

_BASE_FLAGS = ["-O3", "-std=c11", "-shared", "-fPIC"]


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_CBITS_CACHE")
    if override:
        return Path(override)
    uid = os.getuid() if hasattr(os, "getuid") else "na"
    return Path(tempfile.gettempdir()) / f"repro-cbits-{uid}"


def _compilers() -> list:
    ordered = []
    env_cc = os.environ.get("CC")
    for cc in ([env_cc] if env_cc else []) + ["cc", "gcc", "clang"]:
        if cc not in ordered:
            ordered.append(cc)
    return ordered


def _compile() -> Path:
    """Build (or reuse) the cached shared library; returns its path."""
    if os.environ.get("REPRO_NO_CBITS"):
        raise RuntimeError("disabled by REPRO_NO_CBITS")
    digest = hashlib.sha256(
        (_SOURCE + repr(_BASE_FLAGS)).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    target = cache / f"cbits-{digest}.so"
    if target.exists():
        return target
    cache.mkdir(parents=True, exist_ok=True)
    source = cache / f"cbits-{digest}.c"
    source.write_text(_SOURCE)
    errors = []
    for cc in _compilers():
        for extra in (["-fopenmp"], []):
            scratch = cache / f"cbits-{digest}.{os.getpid()}.tmp.so"
            cmd = [cc, *_BASE_FLAGS, *extra, "-o", str(scratch), str(source)]
            try:
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=120
                )
            except (OSError, subprocess.TimeoutExpired) as exc:
                errors.append(f"{cc}: {exc}")
                continue
            if proc.returncode == 0 and scratch.exists():
                os.replace(scratch, target)  # atomic vs concurrent builders
                return target
            errors.append(f"{' '.join(cmd)}: {proc.stderr.strip()[:200]}")
    raise RuntimeError("no working C compiler: " + "; ".join(errors[:3]))


class CBitsBackend(KernelBackend):
    name = "cbits"

    def __init__(self, lib: ctypes.CDLL, path: Path) -> None:
        self.description = f"compiled C popcount/XOR fusion ({path.name})"
        self._lib = lib
        u64p = ctypes.POINTER(ctypes.c_uint64)
        i64p = ctypes.POINTER(ctypes.c_int64)
        i64 = ctypes.c_int64
        lib.repro_popcount_rows.argtypes = [u64p, i64, i64, i64p]
        lib.repro_popcount_rows.restype = None
        lib.repro_hamming_distance.argtypes = [u64p, u64p, i64]
        lib.repro_hamming_distance.restype = i64
        lib.repro_one_to_many.argtypes = [u64p, u64p, i64, i64, i64p]
        lib.repro_one_to_many.restype = None
        lib.repro_cross.argtypes = [u64p, i64, u64p, i64, i64, i64p]
        lib.repro_cross.restype = None
        lib.repro_paired.argtypes = [u64p, u64p, i64, i64, i64p]
        lib.repro_paired.restype = None

    @staticmethod
    def _u64(arr: np.ndarray):
        flat = np.ascontiguousarray(arr)
        return flat.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64)), flat

    @staticmethod
    def _out(shape) -> tuple:
        out = np.empty(shape, dtype=np.int64)
        return out, out.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))

    def popcount_rows(self, rows: np.ndarray) -> np.ndarray:
        m, w = rows.shape
        ptr, keep = self._u64(rows)
        out, optr = self._out(m)
        self._lib.repro_popcount_rows(ptr, m, w, optr)
        return out

    def hamming_distance(self, x: np.ndarray, y: np.ndarray) -> int:
        xp, keep_x = self._u64(x)
        yp, keep_y = self._u64(y)
        return int(self._lib.repro_hamming_distance(xp, yp, x.shape[0]))

    def hamming_distance_many(self, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
        m, w = rows.shape
        xp, keep_x = self._u64(x)
        rp, keep_r = self._u64(rows)
        out, optr = self._out(m)
        self._lib.repro_one_to_many(xp, rp, m, w, optr)
        return out

    def cross_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ma, w = a.shape
        mb = b.shape[0]
        ap, keep_a = self._u64(a)
        bp, keep_b = self._u64(b)
        out, optr = self._out((ma, mb))
        self._lib.repro_cross(ap, ma, bp, mb, w, optr)
        return out

    def paired_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        m, w = a.shape
        ap, keep_a = self._u64(a)
        bp, keep_b = self._u64(b)
        out, optr = self._out(m)
        self._lib.repro_paired(ap, bp, m, w, optr)
        return out


def build_backend() -> CBitsBackend:
    """Compile/load the library; raises with the reason when impossible."""
    path = _compile()
    return CBitsBackend(ctypes.CDLL(str(path)), path)
