"""The ``cbits`` kernel backend: fused C popcount/XOR loops via ctypes.

No new Python dependency: a ~60-line C source embedded below is compiled
once per (source, compiler path+version, flags) digest with the *system*
C compiler into a shared library cached under the user's cache directory
(``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``; mode 0700 and
ownership-checked before any cached artifact is trusted), then loaded
with ``ctypes``.  ``__builtin_popcountll`` maps to the hardware popcount, and
fusing XOR+popcount+accumulate into one loop removes the intermediate
XOR/count arrays the NumPy reference has to materialize per chunk.

OpenMP is used when the compiler supports it (``-fopenmp`` is tried
first, then dropped): every parallel loop writes disjoint ``out[i]``
slots with integer-only arithmetic, so results are deterministic and
bitwise-identical regardless of thread count.

Availability is decided at import by :mod:`repro.hamming.kernels`'
discovery: ``build_backend()`` raising (no compiler, sandboxed tmp,
``REPRO_NO_CBITS=1``) just records the reason and leaves the seam on
``reference``.  A successfully built library must still pass the
differential self-check before it registers.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import stat
import subprocess
from pathlib import Path

import numpy as np

from repro.hamming.kernels import KernelBackend

__all__ = ["CBitsBackend", "build_backend"]

_SOURCE = r"""
#include <stdint.h>

#define PAR_THRESHOLD 262144  /* words; below this, threading overhead loses */

void repro_popcount_rows(const uint64_t *rows, int64_t m, int64_t w,
                         int64_t *out) {
#pragma omp parallel for schedule(static) if (m * w > PAR_THRESHOLD)
    for (int64_t i = 0; i < m; i++) {
        const uint64_t *row = rows + i * w;
        int64_t acc = 0;
        for (int64_t j = 0; j < w; j++)
            acc += __builtin_popcountll(row[j]);
        out[i] = acc;
    }
}

int64_t repro_hamming_distance(const uint64_t *x, const uint64_t *y,
                               int64_t w) {
    int64_t acc = 0;
    for (int64_t j = 0; j < w; j++)
        acc += __builtin_popcountll(x[j] ^ y[j]);
    return acc;
}

void repro_one_to_many(const uint64_t *x, const uint64_t *rows, int64_t m,
                       int64_t w, int64_t *out) {
#pragma omp parallel for schedule(static) if (m * w > PAR_THRESHOLD)
    for (int64_t i = 0; i < m; i++) {
        const uint64_t *row = rows + i * w;
        int64_t acc = 0;
        for (int64_t j = 0; j < w; j++)
            acc += __builtin_popcountll(x[j] ^ row[j]);
        out[i] = acc;
    }
}

void repro_cross(const uint64_t *a, int64_t ma, const uint64_t *b, int64_t mb,
                 int64_t w, int64_t *out) {
#pragma omp parallel for schedule(static) if (ma * mb * w > PAR_THRESHOLD)
    for (int64_t i = 0; i < ma; i++) {
        const uint64_t *ra = a + i * w;
        int64_t *row_out = out + i * mb;
        for (int64_t k = 0; k < mb; k++) {
            const uint64_t *rb = b + k * w;
            int64_t acc = 0;
            for (int64_t j = 0; j < w; j++)
                acc += __builtin_popcountll(ra[j] ^ rb[j]);
            row_out[k] = acc;
        }
    }
}

void repro_paired(const uint64_t *a, const uint64_t *b, int64_t m, int64_t w,
                  int64_t *out) {
#pragma omp parallel for schedule(static) if (m * w > PAR_THRESHOLD)
    for (int64_t i = 0; i < m; i++) {
        const uint64_t *ra = a + i * w;
        const uint64_t *rb = b + i * w;
        int64_t acc = 0;
        for (int64_t j = 0; j < w; j++)
            acc += __builtin_popcountll(ra[j] ^ rb[j]);
        out[i] = acc;
    }
}
"""

_BASE_FLAGS = ["-O3", "-std=c11", "-shared", "-fPIC"]


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_CBITS_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "cbits"


def _assert_private(path: Path, kind: str) -> None:
    """Refuse cache artifacts another local user could have planted.

    A shared library found in the cache is loaded into this process, so
    before trusting one (or the directory it lives in) require that it is
    owned by the current uid and not group/world-writable.
    """
    st = os.stat(path)
    if hasattr(os, "getuid") and st.st_uid != os.getuid():
        raise RuntimeError(
            f"cbits cache {kind} {path} is owned by uid {st.st_uid}, "
            f"not the current user (uid {os.getuid()}); refusing to use it"
        )
    if st.st_mode & (stat.S_IWGRP | stat.S_IWOTH):
        raise RuntimeError(
            f"cbits cache {kind} {path} is group/world-writable "
            f"(mode {stat.S_IMODE(st.st_mode):04o}); refusing to use it"
        )


def _compilers() -> list:
    ordered = []
    env_cc = os.environ.get("CC")
    for cc in ([env_cc] if env_cc else []) + ["cc", "gcc", "clang"]:
        if cc not in ordered:
            ordered.append(cc)
    return ordered


def _cc_fingerprint(cc: str) -> str:
    """Resolved path + version line, or '' when the compiler is missing."""
    path = shutil.which(cc)
    if path is None:
        return ""
    try:
        proc = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
        version = proc.stdout.splitlines()[0].strip() if proc.stdout else ""
    except (OSError, subprocess.TimeoutExpired):
        version = ""
    return f"{path} {version}".strip()


def _compile() -> Path:
    """Build (or reuse) the cached shared library; returns its path.

    The cache key digests (source, base flags, extra flags, resolved
    compiler path + version), so a toolchain change — new CC, upgraded
    compiler, OpenMP appearing/disappearing — rebuilds instead of
    reusing a stale binary.
    """
    if os.environ.get("REPRO_NO_CBITS"):
        raise RuntimeError("disabled by REPRO_NO_CBITS")
    cache = _cache_dir()
    cache.mkdir(parents=True, exist_ok=True, mode=0o700)
    _assert_private(cache, "directory")
    errors = []
    for cc in _compilers():
        fingerprint = _cc_fingerprint(cc)
        if not fingerprint:
            errors.append(f"{cc}: not found on PATH")
            continue
        for extra in (["-fopenmp"], []):
            digest = hashlib.sha256(
                "\n".join([_SOURCE, repr(_BASE_FLAGS), repr(extra), fingerprint]).encode()
            ).hexdigest()[:16]
            target = cache / f"cbits-{digest}.so"
            if target.exists():
                _assert_private(target, "library")
                return target
            source = cache / f"cbits-{digest}.c"
            source.write_text(_SOURCE)
            scratch = cache / f"cbits-{digest}.{os.getpid()}.tmp.so"
            cmd = [cc, *_BASE_FLAGS, *extra, "-o", str(scratch), str(source)]
            try:
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=120
                )
            except (OSError, subprocess.TimeoutExpired) as exc:
                errors.append(f"{cc}: {exc}")
                continue
            if proc.returncode == 0 and scratch.exists():
                os.chmod(scratch, 0o700)
                os.replace(scratch, target)  # atomic vs concurrent builders
                return target
            errors.append(f"{' '.join(cmd)}: {proc.stderr.strip()[:200]}")
    raise RuntimeError("no working C compiler: " + "; ".join(errors[:3]))


class CBitsBackend(KernelBackend):
    name = "cbits"

    def __init__(self, lib: ctypes.CDLL, path: Path) -> None:
        self.description = f"compiled C popcount/XOR fusion ({path.name})"
        self._lib = lib
        u64p = ctypes.POINTER(ctypes.c_uint64)
        i64p = ctypes.POINTER(ctypes.c_int64)
        i64 = ctypes.c_int64
        lib.repro_popcount_rows.argtypes = [u64p, i64, i64, i64p]
        lib.repro_popcount_rows.restype = None
        lib.repro_hamming_distance.argtypes = [u64p, u64p, i64]
        lib.repro_hamming_distance.restype = i64
        lib.repro_one_to_many.argtypes = [u64p, u64p, i64, i64, i64p]
        lib.repro_one_to_many.restype = None
        lib.repro_cross.argtypes = [u64p, i64, u64p, i64, i64, i64p]
        lib.repro_cross.restype = None
        lib.repro_paired.argtypes = [u64p, u64p, i64, i64, i64p]
        lib.repro_paired.restype = None

    @staticmethod
    def _u64(arr: np.ndarray):
        flat = np.ascontiguousarray(arr)
        return flat.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64)), flat

    @staticmethod
    def _out(shape) -> tuple:
        out = np.empty(shape, dtype=np.int64)
        return out, out.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))

    def popcount_rows(self, rows: np.ndarray) -> np.ndarray:
        m, w = rows.shape
        ptr, keep = self._u64(rows)
        out, optr = self._out(m)
        self._lib.repro_popcount_rows(ptr, m, w, optr)
        return out

    def hamming_distance(self, x: np.ndarray, y: np.ndarray) -> int:
        xp, keep_x = self._u64(x)
        yp, keep_y = self._u64(y)
        return int(self._lib.repro_hamming_distance(xp, yp, x.shape[0]))

    def hamming_distance_many(self, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
        m, w = rows.shape
        xp, keep_x = self._u64(x)
        rp, keep_r = self._u64(rows)
        out, optr = self._out(m)
        self._lib.repro_one_to_many(xp, rp, m, w, optr)
        return out

    def cross_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ma, w = a.shape
        mb = b.shape[0]
        ap, keep_a = self._u64(a)
        bp, keep_b = self._u64(b)
        out, optr = self._out((ma, mb))
        self._lib.repro_cross(ap, ma, bp, mb, w, optr)
        return out

    def paired_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        m, w = a.shape
        ap, keep_a = self._u64(a)
        bp, keep_b = self._u64(b)
        out, optr = self._out(m)
        self._lib.repro_paired(ap, bp, m, w, optr)
        return out


def build_backend() -> CBitsBackend:
    """Compile/load the library; raises with the reason when impossible."""
    path = _compile()
    return CBitsBackend(ctypes.CDLL(str(path)), path)
