"""Bit packing for points of the Hamming cube.

A point ``x ∈ {0,1}^d`` is stored as ``W = ceil(d/64)`` little-endian
``uint64`` words; bit ``j`` of the point is bit ``j % 64`` of word
``j // 64``.  Batches of points are ``(m, W)`` arrays.  Packing this way
lets every distance computation run as XOR + ``np.bitwise_count`` over a
few machine words per point, following the vectorization guidance of the
scientific-Python performance notes (no per-bit Python loops).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PackedArrayError",
    "pack_bits",
    "packed_words",
    "random_packed",
    "unpack_bits",
    "tail_mask",
]


class PackedArrayError(ValueError):
    """Raised when a packed array fails shape/padding validation."""


def packed_words(d: int) -> int:
    """Number of 64-bit words needed for ``d`` bits."""
    if d < 1:
        raise PackedArrayError(f"dimension must be >= 1, got {d}")
    return (d + 63) // 64


def tail_mask(d: int) -> int:
    """Mask of valid bits in the final word for dimension ``d``."""
    rem = d % 64
    if rem == 0:
        return (1 << 64) - 1
    return (1 << rem) - 1


def pack_bits(bits: np.ndarray, d: int | None = None) -> np.ndarray:
    """Pack a boolean/0-1 array of shape ``(m, d)`` or ``(d,)`` into uint64.

    Returns shape ``(m, W)`` (or ``(W,)`` for a single point) with padding
    bits in the last word forced to zero.

    Examples
    --------
    >>> import numpy as np
    >>> pack_bits(np.array([1, 0, 1], dtype=np.uint8))
    array([5], dtype=uint64)
    """
    arr = np.asarray(bits)
    single = arr.ndim == 1
    if single:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise PackedArrayError(f"expected 1-D or 2-D bit array, got ndim={arr.ndim}")
    m, dim = arr.shape
    if d is None:
        d = dim
    elif d != dim:
        raise PackedArrayError(f"bit array has {dim} columns but d={d}")
    if dim == 0:
        raise PackedArrayError("cannot pack an empty bit array")
    if arr.dtype != np.uint8:
        arr = arr.astype(np.uint8)
    if arr.max(initial=0) > 1:
        raise PackedArrayError("bit array contains values other than 0/1")
    w = packed_words(d)
    # np.packbits packs MSB-first per byte; request little-bit-order so bit
    # j of the input lands at bit j%8 of byte j//8, matching our layout.
    padded = np.zeros((m, w * 64), dtype=np.uint8)
    padded[:, :d] = arr
    as_bytes = np.packbits(padded, axis=1, bitorder="little")
    packed = as_bytes.view(np.uint64).reshape(m, w)
    if single:
        return packed[0].copy()
    return packed


def unpack_bits(packed: np.ndarray, d: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns a ``uint8`` 0/1 array."""
    arr = np.asarray(packed, dtype=np.uint64)
    single = arr.ndim == 1
    if single:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise PackedArrayError(f"expected 1-D or 2-D packed array, got ndim={arr.ndim}")
    w = packed_words(d)
    if arr.shape[1] != w:
        raise PackedArrayError(f"packed array has {arr.shape[1]} words; d={d} needs {w}")
    as_bytes = np.ascontiguousarray(arr).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")[:, :d]
    if single:
        return bits[0]
    return bits


def random_packed(rng: np.random.Generator, m: int, d: int) -> np.ndarray:
    """Sample ``m`` uniform points of ``{0,1}^d`` directly in packed form."""
    w = packed_words(d)
    words = rng.integers(0, 2**64, size=(m, w), dtype=np.uint64)
    words[:, -1] &= np.uint64(tail_mask(d))
    return words


def validate_packed(packed: np.ndarray, d: int) -> np.ndarray:
    """Validate dtype/shape/padding of a packed batch; returns a 2-D view."""
    arr = np.asarray(packed)
    if arr.dtype != np.uint64:
        raise PackedArrayError(f"packed arrays must be uint64, got {arr.dtype}")
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise PackedArrayError(f"expected 1-D or 2-D packed array, got ndim={arr.ndim}")
    if arr.shape[1] != packed_words(d):
        raise PackedArrayError(
            f"packed array has {arr.shape[1]} words; d={d} needs {packed_words(d)}"
        )
    if arr.shape[0] and int(arr[:, -1].max(initial=0)) > tail_mask(d):
        raise PackedArrayError("padding bits beyond dimension d are set")
    return arr
