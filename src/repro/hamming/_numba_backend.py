"""The ``numba`` kernel backend: ``@njit(parallel=True)`` SWAR popcount.

Import-gated: this module raises ``ImportError`` where numba is absent,
and :mod:`repro.hamming.kernels` discovery records that as the backend's
unavailability reason — nothing else in the project imports numba.

numba has no ``np.bitwise_count`` lowering, so the per-word popcount is
the classic SWAR reduction (exact for all 64-bit values, including the
deliberate wraparound of the final multiply).  ``prange`` loops write
disjoint output slots with integer arithmetic only, so parallel results
are deterministic and bitwise-identical to the reference backend — the
registration self-check and the differential suite both enforce that.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange  # noqa: F401 - ImportError gates the backend

from repro.hamming.kernels import KernelBackend

__all__ = ["NumbaBackend", "build_backend"]

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)


@njit(inline="always")
def _popcnt64(x):
    x = x - ((x >> np.uint64(1)) & _M1)
    x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
    x = (x + (x >> np.uint64(4))) & _M4
    return np.int64((x * _H01) >> np.uint64(56))


@njit(parallel=True, nogil=True, cache=False)
def _popcount_rows(rows):
    m, w = rows.shape
    out = np.empty(m, dtype=np.int64)
    for i in prange(m):
        acc = np.int64(0)
        for j in range(w):
            acc += _popcnt64(rows[i, j])
        out[i] = acc
    return out


@njit(nogil=True, cache=False)
def _hamming_distance(x, y):
    acc = np.int64(0)
    for j in range(x.shape[0]):
        acc += _popcnt64(x[j] ^ y[j])
    return acc


@njit(parallel=True, nogil=True, cache=False)
def _one_to_many(x, rows):
    m, w = rows.shape
    out = np.empty(m, dtype=np.int64)
    for i in prange(m):
        acc = np.int64(0)
        for j in range(w):
            acc += _popcnt64(x[j] ^ rows[i, j])
        out[i] = acc
    return out


@njit(parallel=True, nogil=True, cache=False)
def _cross(a, b):
    ma, w = a.shape
    mb = b.shape[0]
    out = np.empty((ma, mb), dtype=np.int64)
    for i in prange(ma):
        for k in range(mb):
            acc = np.int64(0)
            for j in range(w):
                acc += _popcnt64(a[i, j] ^ b[k, j])
            out[i, k] = acc
    return out


@njit(parallel=True, nogil=True, cache=False)
def _paired(a, b):
    m, w = a.shape
    out = np.empty(m, dtype=np.int64)
    for i in prange(m):
        acc = np.int64(0)
        for j in range(w):
            acc += _popcnt64(a[i, j] ^ b[i, j])
        out[i] = acc
    return out


class NumbaBackend(KernelBackend):
    name = "numba"
    description = "numba @njit(parallel=True) SWAR popcount/XOR fusion"

    def popcount_rows(self, rows: np.ndarray) -> np.ndarray:
        return _popcount_rows(np.ascontiguousarray(rows))

    def hamming_distance(self, x: np.ndarray, y: np.ndarray) -> int:
        return int(
            _hamming_distance(np.ascontiguousarray(x), np.ascontiguousarray(y))
        )

    def hamming_distance_many(self, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
        return _one_to_many(np.ascontiguousarray(x), np.ascontiguousarray(rows))

    def cross_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return _cross(np.ascontiguousarray(a), np.ascontiguousarray(b))

    def paired_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return _paired(np.ascontiguousarray(a), np.ascontiguousarray(b))


def build_backend() -> NumbaBackend:
    return NumbaBackend()
