"""Hamming-space substrate: bit-packed points, vectorized distances, balls,
and workload sampling over the d-dimensional cube {0,1}^d.

Everything downstream (sketches, tables, algorithms, baselines) operates on
the packed ``uint64`` representation produced here; Python-level loops never
touch individual bits on hot paths.
"""

from repro.hamming.balls import (
    ball_members,
    ball_sizes_by_level,
    min_distance,
    nearest_neighbor,
    within_distance_one,
)
from repro.hamming.distance import (
    hamming_distance,
    hamming_distance_many,
    paired_distances,
    pairwise_distances,
    popcount_rows,
    popcount_sum,
)
from repro.hamming.kernels import (
    KernelBackend,
    active_kernel,
    available_kernels,
    kernel_info,
    set_kernel,
    unavailable_kernels,
    use_kernel,
)
from repro.hamming.packing import (
    PackedArrayError,
    pack_bits,
    packed_words,
    random_packed,
    unpack_bits,
)
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import (
    flip_random_bits,
    point_at_distance,
    random_points,
    shell_points,
)

__all__ = [
    "KernelBackend",
    "PackedArrayError",
    "PackedPoints",
    "active_kernel",
    "available_kernels",
    "ball_members",
    "ball_sizes_by_level",
    "flip_random_bits",
    "hamming_distance",
    "hamming_distance_many",
    "kernel_info",
    "min_distance",
    "nearest_neighbor",
    "pack_bits",
    "packed_words",
    "paired_distances",
    "pairwise_distances",
    "point_at_distance",
    "popcount_rows",
    "popcount_sum",
    "random_packed",
    "random_points",
    "set_kernel",
    "shell_points",
    "unavailable_kernels",
    "unpack_bits",
    "use_kernel",
    "within_distance_one",
]
