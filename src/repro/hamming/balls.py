"""Exact Hamming-ball queries against a database.

These are *ground truth* helpers: the schemes themselves never call them at
query time (they only see table cells), but tests, Lemma 8 verification and
the experiment harness need the true ``B_i`` sets, nearest distances and
ball-size profiles.
"""

from __future__ import annotations

import numpy as np

from repro.hamming.points import PackedPoints

__all__ = [
    "ball_members",
    "ball_sizes_by_level",
    "min_distance",
    "nearest_neighbor",
    "within_distance_one",
]


def ball_members(database: PackedPoints, x: np.ndarray, radius: float) -> np.ndarray:
    """Boolean mask of database points within Hamming distance ``radius``.

    Radii are allowed to be fractional (the paper's levels are ``αⁱ``); a
    point is a member iff its integer distance is ``<= floor(radius)``
    — equivalently ``<= radius`` since distances are integers.
    """
    return database.distances_from(x) <= radius


def min_distance(database: PackedPoints, x: np.ndarray) -> int:
    """Exact nearest-neighbor distance from ``x`` to the database."""
    if len(database) == 0:
        raise ValueError("database is empty")
    return int(database.distances_from(x).min())


def nearest_neighbor(database: PackedPoints, x: np.ndarray) -> tuple[int, int]:
    """Return ``(index, distance)`` of an exact nearest database point."""
    if len(database) == 0:
        raise ValueError("database is empty")
    dists = database.distances_from(x)
    idx = int(dists.argmin())
    return idx, int(dists[idx])


def within_distance_one(database: PackedPoints, x: np.ndarray) -> int | None:
    """Index of a database point at distance ``<= 1`` from ``x``, or None.

    This is the ground truth behind the degenerate-case membership
    structure for the 1-neighborhood ``N₁(B)`` (Section 3.1).
    """
    dists = database.distances_from(x)
    hits = np.nonzero(dists <= 1)[0]
    if hits.size == 0:
        return None
    # Prefer an exact match if one exists so the answer is the true NN.
    exact = hits[dists[hits] == 0]
    return int(exact[0]) if exact.size else int(hits[0])


def ball_sizes_by_level(
    database: PackedPoints, x: np.ndarray, alpha: float, levels: int
) -> np.ndarray:
    """Sizes ``|B_i|`` for ``i = 0..levels`` with ``B_i`` of radius ``αⁱ``."""
    dists = database.distances_from(x)
    radii = alpha ** np.arange(levels + 1)
    return (dists[None, :] <= radii[:, None]).sum(axis=1)
