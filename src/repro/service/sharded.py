"""Sharded serving: partition the database, fan queries out, merge by
true distance.

:class:`ShardedANNIndex` is the shard-and-merge pattern of distributed
LSH/ANN services, on top of this package's existing layers:

* **Partitioning** splits the database rows into ``S`` contiguous shards
  of near-equal size; shard ``i`` owns global rows
  ``[offset_i, offset_i + n_i)``, so local answer indexes remap to global
  row ids by adding the shard's offset.
* **Building** constructs one registry scheme per shard.  Each shard gets
  its own public coins, derived from the root spec's seed through
  ``RngTree(seed).child("shard", i)`` (pass ``shared_seed=True`` to give
  every shard the root seed instead — with one shard that reproduces the
  unsharded index bitwise).  With ``workers > 1`` shards build in
  parallel worker processes (``ProcessPoolExecutor``); each worker warms
  its shard's preprocessing (:meth:`ANNIndex.prepare`) and snapshots it
  through :mod:`repro.persistence`, and the parent loads the snapshots —
  the warmed arrays transfer, so parallel build time is real build time.
* **Residency** (:mod:`repro.storage.residency`): every shard lives
  behind a :class:`~repro.storage.residency.ShardHandle` driven by a
  :class:`~repro.storage.residency.ResidencyManager`.  In-memory builds
  keep every shard attached; :meth:`load` with ``load_mode="mmap"``
  and/or a ``memory_budget`` attaches shards lazily on first use, maps
  format-v3 payloads zero-copy, and evicts the least-recently-queried
  clean shards when the resident total exceeds the budget (pinned and
  dirty shards are exempt).  The first *write* to a clean mmap'd shard
  transparently promotes it to a heap reload (copy-on-write at shard
  granularity), so the mutation layer's bitwise guarantees are untouched.
* **Querying** runs each shard's existing
  :class:`~repro.service.engine.BatchQueryEngine` over the whole batch
  and merges per query by *true Hamming distance* between the query and
  each shard's answer point, tie-broken by smallest global row id.
  Shards answer in parallel rounds, so per-query accounting merges with
  :meth:`~repro.cellprobe.accounting.ProbeAccountant.merge_parallel`
  (probes add, rounds max), and per-shard
  :class:`~repro.service.engine.BatchStats` aggregate the same way
  (probes/prefetches sum, sweeps max).
* **Mutation** delegates to the shards' own mutation layers
  (:mod:`repro.core.mutable`): :meth:`ShardedANNIndex.insert` routes
  each new point to the shard with the fewest live rows (ties → the
  smallest shard index), :meth:`ShardedANNIndex.delete` maps global ids
  back to per-shard tombstones/memtable kills, and each shard compacts
  independently (amortized, or all at once via
  :meth:`ShardedANNIndex.compact`).  Global ids stay positional:
  shard ``i``'s ids occupy ``[offsets[i], offsets[i] + shard.id_space)``
  where the offsets are the running sum of the shards' *allocated* id
  spaces — so, like single-index ids, they remap when a shard grows or
  compacts.  (Cold shards report id spaces from their manifests, which
  is exact: a shard can only diverge from its snapshot by being written,
  and written shards are dirty, hence never evicted.)
"""

from __future__ import annotations

import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api import IndexSpec
from repro.cellprobe.accounting import ProbeAccountant
from repro.cellprobe.scheme import SchemeSizeReport
from repro.core.index import ANNIndex, DatabaseLike, _coerce_database
from repro.core.mutable import coerce_delete_ids
from repro.core.result import QueryResult
from repro.hamming.distance import hamming_distance
from repro.hamming.packing import pack_bits, packed_words
from repro.hamming.points import PackedPoints
from repro.service.engine import BatchStats
from repro.storage.residency import (
    ResidencyManager,
    ResidencyStats,
    ShardHandle,
    ShardMeta,
)
from repro.utils.rng import RngTree

__all__ = ["ShardedANNIndex", "shard_bounds", "shard_seed"]


def shard_bounds(n: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal ``[start, stop)`` row ranges for ``n`` rows.

    The first ``n % shards`` shards take one extra row, so sizes differ by
    at most one and every row lands in exactly one shard.
    """
    if shards < 1:
        raise ValueError(f"need >= 1 shard, got {shards}")
    if n < shards:
        raise ValueError(f"cannot split {n} rows into {shards} shards")
    base, extra = divmod(n, shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def shard_seed(root_seed: int, shard: int) -> int:
    """Shard ``i``'s public-coin seed: ``RngTree(root).child("shard", i)``.

    Deterministic in the root seed, independent across shards."""
    return RngTree(root_seed).child("shard", shard).root_entropy


def _build_shard(payload) -> str:
    """Worker-process entry: build one shard, warm it, snapshot it.

    Module-level (picklable) on purpose; returns the snapshot directory so
    the parent can load the warmed index back through the codec (the
    compaction threshold rides along in the manifest).
    """
    words, d, spec_dict, out_dir, warm, compact_threshold = payload

    index = ANNIndex.from_spec(
        PackedPoints(words, d),
        IndexSpec.from_dict(spec_dict),
        compact_threshold=compact_threshold,
    )
    if warm:
        index.prepare()
    return index.save(out_dir)


def _meta_from_index(shard: ANNIndex) -> ShardMeta:
    """Cold metadata for an in-memory shard (resident-size estimate only:
    such handles have no snapshot path, so they can never be evicted and
    the byte count only feeds the stats display)."""
    return ShardMeta(
        n=len(shard.database),
        d=shard.database.d,
        live_n=shard.live_count,
        generation=shard.generation,
        id_space=shard.id_space,
        scheme_name=shard.scheme.scheme_name,
        nbytes=int(shard.database.words.nbytes),
    )


def _meta_from_manifest(shard_dir: Path, manifest: Mapping[str, object]) -> ShardMeta:
    """Cold metadata from a format-v3 shard manifest — no payload I/O.

    The id space needs the memtable row count, which only the v3
    ``payloads`` index records without opening ``database.npz``; this is
    why lazy residency requires v3 snapshots.
    """
    from repro import persistence
    from repro.storage import layout

    payloads = persistence.payload_index(shard_dir, manifest)
    mem_rel = layout.payload_relpath(layout.DATABASE_DIR, "memtable_words")
    if mem_rel not in payloads:
        raise persistence.IndexPersistenceError(
            f"snapshot {shard_dir} payload index is missing {mem_rel}"
        )
    n = int(manifest["n"])
    return ShardMeta(
        n=n,
        d=int(manifest["d"]),
        live_n=int(manifest.get("live_n", n)),
        generation=int(manifest.get("generation", 0)),
        id_space=n + int(payloads[mem_rel]["shape"][0]),
        scheme_name=str(manifest.get("scheme_name", "?")),
        nbytes=layout.payload_nbytes(payloads),
    )


def _snapshot_loader(handle: ShardHandle) -> ANNIndex:
    """The residency manager's loader: (re)load a shard from its snapshot."""
    return ANNIndex.load(handle.path, load_mode=handle.load_mode)


class ShardedANNIndex:
    """``S`` per-shard ANN indexes served as one, with distance merging.

    Use :meth:`build` (or :meth:`load`); the constructor takes
    already-built shard indexes plus their global row offsets.
    """

    def __init__(
        self,
        shards: Sequence[ANNIndex],
        offsets: Sequence[int],
        spec: Optional[IndexSpec] = None,
    ):
        if not shards:
            raise ValueError("need at least one shard")
        if len(offsets) != len(shards):
            raise ValueError(
                f"{len(shards)} shards but {len(offsets)} offsets"
            )
        handles = [
            ShardHandle(
                shard_id=i,
                meta=_meta_from_index(shard),
                path=None,
                load_mode=getattr(shard, "load_mode", "heap"),
                index=shard,
            )
            for i, shard in enumerate(shards)
        ]
        self._init_state(handles, spec=spec, memory_budget=None, load_mode="heap")
        supplied = [int(o) for o in offsets]
        # Offsets are derived state (running sum of shard id spaces); the
        # constructor argument survives for snapshot/caller validation.
        if supplied != self.offsets:
            raise ValueError(
                f"offsets {supplied} do not match the shards' id spaces "
                f"(expected {self.offsets})"
            )

    def _init_state(
        self,
        handles: List[ShardHandle],
        spec: Optional[IndexSpec],
        memory_budget: Optional[int],
        load_mode: str,
    ) -> None:
        dims = {handle.meta.d for handle in handles}
        if len(dims) != 1:
            raise ValueError(f"shards disagree on dimension: {sorted(dims)}")
        self._handles = handles
        self._residency = ResidencyManager(
            handles, _snapshot_loader, memory_budget=memory_budget
        )
        #: the root spec sharding was derived from (None for hand-assembled)
        self.spec = spec
        self.d = handles[0].meta.d
        #: the mode shards load with ("mmap" keeps payloads zero-copy)
        self.load_mode = load_mode
        self._last_batch_stats: Optional[BatchStats] = None

    # -- residency ---------------------------------------------------------
    def _attach(self, shard_id: int, for_write: bool = False) -> ANNIndex:
        """The shard's live index, loading/evicting/promoting as needed."""
        return self._residency.attach(shard_id, for_write=for_write)

    @property
    def shards(self) -> List[ANNIndex]:
        """Every shard's live index (attaching all of them).

        The historical fully-resident surface: iterating or indexing this
        list forces cold shards in.  Residency-aware code should go
        through per-shard attaches instead and let the manager evict.
        """
        return [self._attach(i) for i in range(len(self._handles))]

    def residency_stats(self) -> ResidencyStats:
        """Hit/miss/eviction counters and per-shard occupancy."""
        return self._residency.stats()

    def pin(self, shard_id: int) -> None:
        """Exempt one shard from budget eviction."""
        self._residency.pin(shard_id)

    def unpin(self, shard_id: int) -> None:
        self._residency.unpin(shard_id)

    @property
    def memory_budget(self) -> Optional[int]:
        return self._residency.memory_budget

    @property
    def offsets(self) -> List[int]:
        """Each shard's first global id: the running sum of the shards'
        allocated id spaces (static rows + memtable entries).  Recomputed
        on demand because inserts and compactions resize shards; cold
        shards answer from their manifests without attaching."""
        out: List[int] = []
        total = 0
        for handle in self._handles:
            out.append(total)
            total += handle.id_space
        return out

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        database: DatabaseLike,
        spec: IndexSpec,
        shards: int,
        workers: Optional[int] = None,
        warm: bool = True,
        shared_seed: bool = False,
        compact_threshold: Optional[float] = None,
    ) -> "ShardedANNIndex":
        """Partition ``database`` into ``shards`` and build every shard.

        ``workers > 1`` builds shards in parallel processes (capped at the
        shard count); ``workers=None``/``0``/``1`` builds serially
        in-process.  ``warm`` materializes each shard's preprocessing at
        build time (that is the work that parallelizes).  ``shared_seed``
        gives every shard the root seed instead of an independent
        ``RngTree("shard", i)`` derivation.  ``compact_threshold``
        forwards to every shard's mutation layer (None = the default
        amortized trigger).
        """
        from repro.core.mutable import DEFAULT_COMPACT_THRESHOLD

        threshold = (
            DEFAULT_COMPACT_THRESHOLD if compact_threshold is None else compact_threshold
        )
        db = _coerce_database(database)
        spec = spec.resolve_seed()
        bounds = shard_bounds(len(db), shards)
        specs = [
            spec if shared_seed else spec.replace(seed=shard_seed(spec.seed, i))
            for i in range(shards)
        ]
        workers = min(int(workers or 1), shards)
        if workers <= 1:
            built = [
                ANNIndex.from_spec(
                    db.take(range(start, stop)),
                    shard_spec,
                    compact_threshold=threshold,
                )
                for (start, stop), shard_spec in zip(bounds, specs)
            ]
            if warm:
                for index in built:
                    index.prepare()
        else:
            with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
                payloads = [
                    (
                        db.words[start:stop],
                        db.d,
                        shard_spec.to_dict(),
                        str(Path(tmp) / f"shard-{i:04d}"),
                        warm,
                        threshold,
                    )
                    for i, ((start, stop), shard_spec) in enumerate(zip(bounds, specs))
                ]
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    saved = list(pool.map(_build_shard, payloads))
                built = [ANNIndex.load(path) for path in saved]
        return cls(built, [start for start, _ in bounds], spec=spec)

    # -- persistence -------------------------------------------------------
    def save(self, path, extras=None, format_version=None) -> str:
        """Snapshot every shard plus a parent manifest to a directory.

        ``format_version=3`` writes every shard in the raw-payload layout
        :meth:`load` can memory-map; the default stays format v2.
        """
        from repro import persistence

        version = persistence.check_format_version(format_version)
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        shard_dirs = []
        for i in range(self.num_shards):
            shard_dirs.append(f"shard-{i:04d}")
            self._attach(i).save(
                directory / shard_dirs[-1], format_version=version
            )
        manifest = {
            "format": persistence.FORMAT_NAME,
            "format_version": version,
            "kind": persistence.KIND_SHARDED,
            "spec": None if self.spec is None else self.spec.to_dict(),
            "shards": shard_dirs,
            "offsets": self.offsets,
            "d": self.d,
            "extras": dict(extras or {}),
        }
        persistence._write_manifest(directory, manifest)
        return str(directory)

    @classmethod
    def load(
        cls,
        path,
        load_mode: str = "heap",
        memory_budget: Optional[int] = None,
        pin: Sequence[int] = (),
    ) -> "ShardedANNIndex":
        """Load a snapshot written by :meth:`save`.

        The default (``load_mode="heap"``, no budget) attaches every
        shard eagerly, exactly as before.  ``load_mode="mmap"`` and/or a
        ``memory_budget`` (bytes) switch to *lazy residency*: shards
        attach on first query, map format-v3 payloads zero-copy, and the
        least-recently-used clean shards are evicted whenever the
        resident total exceeds the budget.  ``pin`` names shard indexes
        exempt from eviction.  Lazy loading requires every shard to be a
        format-v3 snapshot (the manifest payload index is what lets cold
        shards report sizes and id spaces without touching payload
        files); answers are bitwise-identical in every mode.
        """
        from repro import persistence

        persistence.check_load_mode(load_mode)
        directory = Path(path)
        manifest = persistence.read_manifest(directory)
        if manifest.get("kind") != persistence.KIND_SHARDED:
            raise persistence.IndexPersistenceError(
                f"snapshot {directory} holds a {manifest.get('kind')!r}, "
                "not a sharded index"
            )
        lazy = load_mode == "mmap" or memory_budget is not None
        handles: List[ShardHandle] = []
        for i, shard_dir in enumerate(manifest["shards"]):
            shard_path = directory / shard_dir
            shard_manifest = persistence.read_manifest(shard_path)
            shard_version = int(shard_manifest["format_version"])
            if lazy and shard_version < persistence.MMAP_FORMAT_VERSION:
                raise persistence.IndexPersistenceError(
                    f"shard snapshot {shard_path} is format v{shard_version}; "
                    f"lazy out-of-core loading (load_mode='mmap' or a "
                    f"memory_budget) needs format "
                    f"v{persistence.MMAP_FORMAT_VERSION} — re-save with "
                    f"save(..., format_version="
                    f"{persistence.MMAP_FORMAT_VERSION})"
                )
            if lazy:
                handle = ShardHandle(
                    shard_id=i,
                    meta=_meta_from_manifest(shard_path, shard_manifest),
                    path=shard_path,
                    load_mode=load_mode,
                )
            else:
                index = ANNIndex.load(shard_path, load_mode=load_mode)
                handle = ShardHandle(
                    shard_id=i,
                    meta=_meta_from_index(index),
                    path=shard_path,
                    load_mode=load_mode,
                    index=index,
                )
            handles.append(handle)
        for shard_id in pin:
            handles[int(shard_id)].pinned = True
        spec_dict = manifest.get("spec")
        spec = None if spec_dict is None else IndexSpec.from_dict(spec_dict)
        self = cls.__new__(cls)
        self._init_state(
            handles, spec=spec, memory_budget=memory_budget, load_mode=load_mode
        )
        supplied = [int(o) for o in manifest["offsets"]]
        if supplied != self.offsets:
            raise persistence.IndexPersistenceError(
                f"snapshot {directory} offsets {supplied} do not match the "
                f"shards' id spaces (expected {self.offsets})"
            )
        return self

    # -- querying ----------------------------------------------------------
    def _coerce_batch(self, queries: Union[np.ndarray, list]) -> np.ndarray:
        arr = np.asarray(queries)
        if arr.size == 0:
            return np.empty((0, packed_words(self.d)), dtype=np.uint64)
        if arr.dtype != np.uint64:
            if arr.ndim == 1:
                arr = arr[None, :]
            arr = pack_bits(arr.astype(np.uint8), self.d)
        elif arr.ndim == 1:
            arr = arr[None, :]
        return arr

    def query(self, x: Union[np.ndarray, list]) -> QueryResult:
        """Answer one query through every shard; best true distance wins."""
        return self.query_batch(x)[0]

    def query_batch(
        self, queries: Union[np.ndarray, list], prefetch: bool = True
    ) -> List[QueryResult]:
        """Fan a batch out through every shard's batched engine and merge.

        Per query, every shard's answer is scored by its true Hamming
        distance to the query; the smallest distance wins (ties: smallest
        global row id).  Shards run in parallel rounds, so merged
        accounting sums probes and takes the max of rounds.

        Shards attach (and, under a memory budget, evict each other) one
        at a time as the fan-out walks them — per-shard stats are
        captured inside the walk, while the shard is certainly resident.
        """
        arr = self._coerce_batch(queries)
        offsets = self.offsets
        per_shard: List[List[QueryResult]] = []
        shard_stats: List[Optional[BatchStats]] = []
        for si in range(self.num_shards):
            shard = self._attach(si)
            per_shard.append(shard.query_batch(arr, prefetch=prefetch))
            shard_stats.append(shard.last_batch_stats)
        inner = self._handles[0].scheme_name
        scheme_name = self.scheme_label
        merged: List[QueryResult] = []
        total_rounds = 0
        for qi in range(arr.shape[0]):
            accountant = ProbeAccountant()
            best: Optional[Tuple[int, int, int, QueryResult]] = None
            answered = 0
            for si, results in enumerate(per_shard):
                res = results[qi]
                accountant.merge_parallel(res.accountant)
                if res.answer_packed is None:
                    continue
                answered += 1
                dist = hamming_distance(arr[qi], res.answer_packed)
                global_id = offsets[si] + res.answer_index
                if best is None or (dist, global_id) < best[:2]:
                    best = (dist, global_id, si, res)
            total_rounds += accountant.total_rounds
            meta = {
                "shards": self.num_shards,
                "shards_answered": answered,
                "inner": inner,
            }
            if best is None:
                merged.append(
                    QueryResult(None, None, accountant, scheme=scheme_name, meta=meta)
                )
            else:
                dist, global_id, si, res = best
                merged.append(
                    QueryResult(
                        global_id,
                        res.answer_packed,
                        accountant,
                        scheme=scheme_name,
                        meta={
                            **meta,
                            "shard": si,
                            "distance": dist,
                            "winner_meta": dict(res.meta),
                        },
                    )
                )
        self._last_batch_stats = BatchStats(
            batch_size=arr.shape[0],
            sweeps=max((s.sweeps for s in shard_stats if s is not None), default=0),
            total_probes=sum(s.total_probes for s in shard_stats if s is not None),
            total_rounds=total_rounds,
            prefetched_cells=sum(
                s.prefetched_cells for s in shard_stats if s is not None
            ),
        )
        return merged

    @property
    def last_batch_stats(self) -> Optional[BatchStats]:
        """Aggregated statistics of the most recent :meth:`query_batch`."""
        return self._last_batch_stats

    # -- mutation ----------------------------------------------------------
    def _coerce_rows(self, points) -> np.ndarray:
        """Packed ``(m, W)`` rows from bits/(packed) points of any shape.

        Standalone (mirrors :meth:`ANNIndex._coerce_rows`) so that shaping
        an input batch never forces a cold shard to attach.
        """
        if isinstance(points, PackedPoints):
            if points.d != self.d:
                raise ValueError(
                    f"points have d={points.d}, index has d={self.d}"
                )
            return points.words
        arr = np.asarray(points)
        if arr.dtype == np.uint64:
            if arr.ndim == 1:
                arr = arr[None, :]
            if arr.ndim != 2 or arr.shape[1] != packed_words(self.d):
                raise ValueError(
                    f"packed rows need shape (m, {packed_words(self.d)}), "
                    f"got {arr.shape}"
                )
            return arr
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.d:
            raise ValueError(
                f"bit rows need shape (m, {self.d}), got {arr.shape}"
            )
        return pack_bits(arr.astype(np.uint8), self.d)

    def insert(self, points) -> List[int]:
        """Insert points, each routed to the shard with the fewest live
        rows at that moment (ties → smallest shard index).

        Returns global ids in input order.  Routing is greedy per point —
        a batch spreads across shards as their live counts equalize —
        and each shard may run its own amortized compaction, so the
        returned ids are computed against the post-insert offsets.
        Receiving shards attach for write: a clean mmap'd shard is
        promoted to heap first (see :mod:`repro.storage.residency`).
        """
        rows = self._coerce_rows(points)
        if rows.shape[0] == 0:
            return []
        live = [handle.live_count for handle in self._handles]
        routed: List[List[np.ndarray]] = [[] for _ in self._handles]
        routing: List[Tuple[int, int]] = []  # input row -> (shard, batch pos)
        for i in range(rows.shape[0]):
            si = min(range(len(self._handles)), key=lambda s: (live[s], s))
            routing.append((si, len(routed[si])))
            routed[si].append(rows[i])
            live[si] += 1
        local_ids: List[List[int]] = [
            self._attach(si, for_write=True).insert(np.vstack(batch)) if batch else []
            for si, batch in enumerate(routed)
        ]
        offsets = self.offsets
        return [offsets[si] + local_ids[si][pos] for si, pos in routing]

    def _locate(self, global_id: int, offsets: Optional[List[int]] = None) -> Tuple[int, int]:
        """Resolve a global id to ``(shard index, shard-local id)``.

        The single source of truth for the id partition (used by both
        :meth:`delete` and :meth:`is_live`); raises ``ValueError`` for
        ids outside every shard's allocated id space.
        """
        gid = int(global_id)
        offsets = self.offsets if offsets is None else offsets
        for si in range(len(self._handles) - 1, -1, -1):
            if offsets[si] <= gid:
                local = gid - offsets[si]
                if local >= self._handles[si].id_space:
                    break
                return si, local
        raise ValueError(f"id {gid} out of range [0, {self.id_space})")

    def delete(self, ids) -> int:
        """Delete rows by global id; returns how many were deleted.

        Ids are mapped to ``(shard, local id)`` through the current
        offsets and pre-validated across every shard before any shard is
        touched, so a bad id leaves the whole sharded index unchanged.
        (Validation needs each target shard's mutation state, so targets
        attach read-only during the check and for-write only once the
        whole batch is known good.)
        """
        arr = coerce_delete_ids(ids)
        if arr.size == 0:
            return 0
        offsets = self.offsets
        per_shard: List[List[int]] = [[] for _ in self._handles]
        for gid in arr:
            si, local = self._locate(gid, offsets)
            if not self._attach(si).is_live(local):
                raise ValueError(f"id {int(gid)} is already deleted")
            per_shard[si].append(local)
        for si, locals_ in enumerate(per_shard):
            if locals_:
                self._attach(si, for_write=True).delete(locals_)
        return int(arr.size)

    def compact(self) -> List[int]:
        """Compact every dirty shard; returns the shards' generations.

        Raises if some dirty shard cannot rebuild (e.g. fewer than 2 live
        rows); shards already compacted before the error stay compacted.
        Shards with nothing to compact attach read-only (the no-op
        :meth:`ANNIndex.compact` does not diverge them from their
        snapshots, so they stay evictable).
        """
        generations: List[int] = []
        for si in range(self.num_shards):
            shard = self._attach(si)
            if shard.mutation.dirty_count:
                shard = self._attach(si, for_write=True)
            generations.append(shard.compact())
        return generations

    @property
    def generations(self) -> List[int]:
        """Each shard's compaction generation."""
        return [handle.generation for handle in self._handles]

    @property
    def live_count(self) -> int:
        return sum(handle.live_count for handle in self._handles)

    @property
    def id_space(self) -> int:
        return sum(handle.id_space for handle in self._handles)

    def is_live(self, global_id: int) -> bool:
        """Whether a global id currently resolves to a searchable row."""
        try:
            si, local = self._locate(global_id)
        except ValueError:
            return False
        return self._attach(si).is_live(local)

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return sum(handle.live_count for handle in self._handles)

    @property
    def num_shards(self) -> int:
        return len(self._handles)

    @property
    def scheme_label(self) -> str:
        """The scheme name merged results carry: ``sharded(<inner>×S)``."""
        return f"sharded({self._handles[0].scheme_name}×{len(self._handles)})"

    def size_report(self) -> SchemeSizeReport:
        """Combined logical size accounting across all shards (attaches
        every shard — sizes come from the live schemes)."""
        reports = [self._attach(i).size_report() for i in range(self.num_shards)]
        return SchemeSizeReport(
            table_cells=sum(r.table_cells for r in reports),
            word_bits=max(r.word_bits for r in reports),
            table_names=[
                (f"shard{i}", r.table_cells) for i, r in enumerate(reports)
            ],
            notes=f"{len(reports)} shards of {self._handles[0].scheme_name}",
        )
