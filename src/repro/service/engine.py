"""The batched query engine: lockstep round execution for query batches.

``BatchQueryEngine.run`` takes a packed ``(B, W)`` batch and drives one
query plan per query (see :mod:`repro.cellprobe.plan`).  Execution is a
sequence of *sweeps*; in each sweep every still-active plan has one round
outstanding, and the engine

1. **prefetches** the union of the sweep's probes: requests are grouped
   by table, and each :class:`~repro.cellprobe.table.LazyTable` with a
   batched content function materializes all its missing cells in one
   vectorized pass (one broadcast XOR/popcount kernel call instead of a
   Python-level scan per probe);
2. **executes** each query's round through that query's own
   :class:`~repro.cellprobe.session.ProbeSession`, which now only hits
   the warm memo cache — charging probes and rounds to the query exactly
   as the sequential path does;
3. **advances** each plan with its round's contents.

Before the first sweep, ``scheme.batch_prepare`` computes every query's
sketch addresses level by level with one vectorized application per
level, replacing per-query sketching — typically the largest win.

Because prefetching only changes *when* memoized cell contents are
computed (never what they contain), and accounting runs through
unmodified per-query sessions, results are identical to running
``scheme.query`` over the batch sequentially — the equivalence tests in
``tests/service`` assert this field by field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

import numpy as np

from repro.cellprobe.accounting import ProbeAccountant
from repro.cellprobe.plan import PlanDraft
from repro.cellprobe.scheme import CellProbingScheme
from repro.cellprobe.session import ProbeRequest
from repro.hamming.distance import cross_distances, hamming_distance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mutable import MutationState
    from repro.core.result import QueryResult

__all__ = ["BatchQueryEngine", "BatchStats", "merge_mutation_candidates"]


def merge_mutation_candidates(
    queries: np.ndarray,
    results: List["QueryResult"],
    state: "MutationState",
) -> List["QueryResult"]:
    """Apply the mutation layer's result-merge rule to a batch.

    Per query the merged answer is the minimum of two candidates by
    ``(true Hamming distance, global id)`` — the sharded merge rule:

    * the static scheme's answer, **dropped when its row is tombstoned**
      (the bitmap consult is metadata, never a charged probe), and
    * the best live memtable row, found by an exact scan (distances for
      the whole batch come from one :func:`cross_distances` kernel call;
      each live memtable row costs one probe, charged as a parallel
      round folded into the static rounds via
      :meth:`~repro.cellprobe.accounting.ProbeAccountant.merge_parallel`,
      so rounds never increase past ``max(static rounds, 1)``).

    Called with a batch of one by the sequential ``ANNIndex.query`` path,
    so both paths share one implementation and stay bitwise-identical.
    Accountants are merged in place; the returned results reuse them.
    """
    from repro.core.result import QueryResult  # deferred: avoids core<->service cycle

    positions, mem_words = state.memtable.live_entries()
    mem_count = int(positions.size)
    mem_ids = [int(state.n_static + p) for p in positions]
    mem_probes = [("memtable", gid) for gid in mem_ids]
    dists = cross_distances(queries, mem_words) if mem_count else None
    merged: List[QueryResult] = []
    for qi, res in enumerate(results):
        accountant = res.accountant
        suppressed = res.answer_index is not None and bool(
            state.tombstones[res.answer_index]
        )
        best = None  # (distance, global id, packed row)
        source = None
        if res.answer_index is not None and not suppressed:
            best = (
                hamming_distance(queries[qi], res.answer_packed),
                int(res.answer_index),
                res.answer_packed,
            )
            source = "static"
        if mem_count:
            scan = ProbeAccountant()
            scan.charge_round(scan.begin_round(), list(mem_probes))
            accountant.merge_parallel(scan)
            j = int(np.argmin(dists[qi]))  # first min == smallest id
            candidate = (int(dists[qi][j]), mem_ids[j], mem_words[j])
            if best is None or candidate[:2] < best[:2]:
                best = candidate
                source = "memtable"
        meta = dict(res.meta)
        meta["mutable"] = {
            "generation": state.generation,
            "memtable_scanned": mem_count,
            "static_tombstoned": suppressed,
            "source": source,
        }
        merged.append(
            QueryResult(
                answer_index=None if best is None else best[1],
                answer_packed=None if best is None else best[2],
                accountant=accountant,
                scheme=res.scheme,
                meta=meta,
            )
        )
    return merged


@dataclass
class BatchStats:
    """Execution statistics of one :meth:`BatchQueryEngine.run` call."""

    batch_size: int
    sweeps: int
    total_probes: int
    total_rounds: int
    prefetched_cells: int

    def as_dict(self) -> dict:
        return {
            "batch_size": self.batch_size,
            "sweeps": self.sweeps,
            "total_probes": self.total_probes,
            "total_rounds": self.total_rounds,
            "prefetched_cells": self.prefetched_cells,
        }


class BatchQueryEngine:
    """Executes query batches against one scheme with cross-query batching.

    Parameters
    ----------
    scheme : any :class:`~repro.cellprobe.scheme.CellProbingScheme`; plan-
        capable schemes (both paper algorithms and the boosted wrapper)
        get lockstep batched execution, others fall back to a plain loop
    prefetch : disable to skip the vectorized cell prefetch (used by tests
        to show prefetching does not change results)

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.params import Algorithm1Params, BaseParameters
    >>> from repro.core.algorithm1 import SimpleKRoundScheme
    >>> from repro.hamming.points import PackedPoints
    >>> from repro.hamming.sampling import random_points
    >>> from repro.service import BatchQueryEngine
    >>> rng = np.random.default_rng(0)
    >>> db = PackedPoints(random_points(rng, 64, 128), 128)
    >>> scheme = SimpleKRoundScheme(db, Algorithm1Params(BaseParameters(64, 128), k=2), seed=1)
    >>> engine = BatchQueryEngine(scheme)
    >>> results = engine.run(random_points(rng, 5, 128))
    >>> len(results), all(r.rounds <= 2 for r in results)
    (5, True)
    """

    def __init__(self, scheme: CellProbingScheme, prefetch: bool = True):
        self.scheme = scheme
        self.prefetch = bool(prefetch)
        self.last_stats: Optional[BatchStats] = None
        # Persistent table classification: id(table) -> (table, supports
        # prefetch).  A scheme's tables are stable objects, so classifying
        # each once amortizes the per-probe getattr across every sweep of
        # every run.  The table object is stored for BOTH classifications,
        # which pins every classified table and guarantees no id is ever
        # recycled onto a stale entry.
        self._prefetchable: Dict[int, tuple] = {}
        # Pooled per-sweep address buffers, keyed like _prefetchable.  A
        # steady stream of flushes re-walks the same tables every sweep;
        # reusing the list objects (cleared after each prefetch) removes
        # the per-sweep dict/list churn.  The XOR/count temporaries of the
        # distance kernels themselves are pooled one layer down, in the
        # active backend's ScratchPool (repro.hamming.kernels).
        self._addr_scratch: Dict[int, List[object]] = {}

    def run(self, queries: np.ndarray) -> List[object]:
        """Answer a packed batch; returns per-query results in order."""
        batch = np.asarray(queries, dtype=np.uint64)
        if batch.ndim == 1:
            batch = batch[None, :]
        size = batch.shape[0]
        scheme = self.scheme
        if size == 0:
            self.last_stats = BatchStats(0, 0, 0, 0, 0)
            return []
        if not scheme.supports_plans():
            results = [scheme.query(batch[i]) for i in range(size)]
            self.last_stats = BatchStats(
                batch_size=size,
                sweeps=0,
                total_probes=sum(r.probes for r in results),
                total_rounds=sum(r.rounds for r in results),
                prefetched_cells=0,
            )
            return results

        scheme.begin_query()
        scheme.batch_prepare(batch)
        accountants = [scheme.make_accountant() for _ in range(size)]
        sessions = [scheme.make_session(acc) for acc in accountants]
        plans = [scheme.query_plan(batch[i]) for i in range(size)]
        results: List[Optional[object]] = [None] * size
        pending: Dict[int, List[ProbeRequest]] = {}
        for i, plan in enumerate(plans):
            try:
                pending[i] = next(plan)
            except StopIteration as stop:
                results[i] = self._finalize(stop.value, accountants[i])

        sweeps = 0
        prefetched = 0
        while pending:
            sweeps += 1
            if self.prefetch:
                prefetched += self._prefetch_sweep(pending.values())
            for i in list(pending):  # insertion order == query order
                contents = sessions[i].parallel_read(pending[i])
                try:
                    pending[i] = plans[i].send(contents)
                except StopIteration as stop:
                    results[i] = self._finalize(stop.value, accountants[i])
                    del pending[i]

        self.last_stats = BatchStats(
            batch_size=size,
            sweeps=sweeps,
            total_probes=sum(acc.total_probes for acc in accountants),
            total_rounds=sum(acc.total_rounds for acc in accountants),
            prefetched_cells=prefetched,
        )
        return results

    # -- internals ---------------------------------------------------------
    def _finalize(self, draft: PlanDraft, accountant) -> object:
        if not isinstance(draft, PlanDraft):
            raise TypeError(
                f"query plan of {type(self.scheme).__name__} returned "
                f"{type(draft).__name__}, expected PlanDraft"
            )
        return self.scheme.finalize(draft, accountant)

    def _prefetch_sweep(self, request_lists: Iterable[List[ProbeRequest]]) -> int:
        """Batch-materialize the sweep's missing cells, grouped by table."""
        classify = self._prefetchable
        scratch = self._addr_scratch
        touched: List[int] = []  # tables with addresses this sweep, in order
        for requests in request_lists:
            for req in requests:
                table = req.table
                tid = id(table)
                entry = classify.get(tid)
                if entry is None:
                    entry = (table, bool(getattr(table, "supports_prefetch", False)))
                    classify[tid] = entry
                if entry[1]:
                    addrs = scratch.get(tid)
                    if addrs is None:
                        addrs = scratch[tid] = []
                    if not addrs:
                        touched.append(tid)
                    addrs.append(req.address)
        filled = 0
        try:
            for tid in touched:
                filled += classify[tid][0].prefetch(scratch[tid])
        finally:
            for tid in touched:
                scratch[tid].clear()
        return filled
