"""Subprocess harness for a shard-serve/route cluster.

This is the process-topology half of the fault-injection story
(``docs/DISTRIBUTED.md``): spawn R replicas of every shard of a saved
:class:`~repro.service.sharded.ShardedANNIndex` snapshot as real
``python -m repro shard-serve`` processes, put a ``repro route`` router
in front, and expose deterministic fault injection — kill (SIGKILL),
suspend/resume (SIGSTOP/SIGCONT), restart-from-snapshot — per replica.
Every process handshakes through ``--ready-file``, so startup is
race-free; stdout/stderr land in per-process log files for post-mortem.

The chaos/equivalence machinery (request schedules, the single-process
oracle, hypothesis integration) lives in ``tests/utils/cluster_harness.py``;
this module is intentionally test-framework-free so benchmarks
(``benchmarks/bench_e18_cluster.py``), the CI distributed smoke, and
``examples/cluster_demo.py`` can reuse it.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

__all__ = [
    "ClusterHarness",
    "HarnessStateError",
    "ManagedProcess",
    "ProcessDiedError",
    "ShardFleet",
]


class ProcessDiedError(RuntimeError):
    """A managed process exited before (or instead of) becoming ready."""


class HarnessStateError(RuntimeError):
    """A lifecycle call hit a managed process in the wrong state (spawning
    a live process, signalling a dead one).  Subclasses
    :class:`RuntimeError` so untyped callers keep working."""


def free_port() -> int:
    """An OS-assigned free TCP port (released immediately; small race
    window is acceptable for test harnesses)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _repro_env() -> dict:
    """Child env with this interpreter's ``repro`` importable."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


class ManagedProcess:
    """One spawnable/killable/suspendable server process."""

    def __init__(self, name: str, argv: List[str], ready_file: Path, log_file: Path):
        self.name = name
        self.argv = list(argv)
        self.ready_file = Path(ready_file)
        self.log_file = Path(log_file)
        self.proc: Optional[subprocess.Popen] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._env = _repro_env()

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def spawn(self, timeout: float = 30.0) -> "ManagedProcess":
        """Start the process and wait for its ready-file handshake."""
        if self.alive:
            raise HarnessStateError(f"{self.name} is already running")
        self.ready_file.unlink(missing_ok=True)
        log = open(self.log_file, "ab")
        try:
            self.proc = subprocess.Popen(
                self.argv, stdout=log, stderr=subprocess.STDOUT, env=self._env
            )
        finally:
            log.close()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise ProcessDiedError(
                    f"{self.name} exited with code {self.proc.returncode} "
                    f"before becoming ready; log: {self.log_file}\n"
                    f"{self.log_file.read_text()[-2000:]}"
                )
            if self.ready_file.exists():
                # The server writes the ready file atomically (temp +
                # rename), but an older server — or any non-atomic
                # writer — can be caught between create and write.
                # Treat empty/unparseable content as "not ready yet"
                # and keep polling instead of failing the handshake.
                text = self.ready_file.read_text().strip()
                parts = text.split()
                if len(parts) == 2:
                    try:
                        port = int(parts[1])
                    except ValueError:
                        port = None
                    if port is not None:
                        self.host, self.port = parts[0], port
                        return self
            time.sleep(0.01)
        raise TimeoutError(
            f"{self.name} did not become ready within {timeout}s; "
            f"log: {self.log_file}"
        )

    def kill(self) -> None:
        """SIGKILL — the crash-failure injection."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()

    def suspend(self) -> None:
        """SIGSTOP — the replica freezes mid-whatever (gray failure)."""
        if not self.alive:
            raise HarnessStateError(f"{self.name} is not running")
        os.kill(self.proc.pid, signal.SIGSTOP)

    def resume(self) -> None:
        """SIGCONT a suspended replica."""
        if self.proc is None or self.proc.poll() is not None:
            raise HarnessStateError(f"{self.name} is not running")
        os.kill(self.proc.pid, signal.SIGCONT)

    def restart(self, timeout: float = 30.0) -> "ManagedProcess":
        """Kill (if needed) and respawn with the same argv — i.e. reload
        the same snapshot, same port; the router catches it up."""
        self.kill()
        return self.spawn(timeout=timeout)

    def stop(self) -> None:
        """Terminate politely, escalating to SIGKILL."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            try:
                os.kill(self.proc.pid, signal.SIGCONT)  # in case it's suspended
            except (OSError, ProcessLookupError):
                pass
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()


class ShardFleet:
    """The shard-server half of a cluster: R replica processes per shard
    of a sharded snapshot, with optional auto-respawn.

    ``ClusterHarness`` composes this with an external router process;
    ``repro route --supervise`` runs one in-process and polls
    :meth:`check_respawn` so a crashed replica comes back on its own
    (same snapshot, same port — the router's health loop then catches
    it up from the write log).
    """

    def __init__(
        self,
        snapshot,
        replicas: int = 2,
        workdir=None,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        load_mode: str = "heap",
        kernel: Optional[str] = None,
    ):
        from repro.persistence import KIND_SHARDED, read_manifest

        self.snapshot = Path(snapshot)
        manifest = read_manifest(self.snapshot)
        if manifest.get("kind") != KIND_SHARDED:
            raise ValueError(
                f"{snapshot} is not a sharded snapshot; build one with "
                "ShardedANNIndex.build(...).save(...)"
            )
        self.shard_dirs = [self.snapshot / d for d in manifest["shards"]]
        if replicas < 1:
            raise ValueError(f"need >= 1 replica, got {replicas}")
        self.replicas = int(replicas)
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.load_mode = str(load_mode)
        self.kernel = kernel
        self.workdir = Path(workdir) if workdir else Path(
            tempfile.mkdtemp(prefix="repro-fleet-")
        )
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.processes: List[List[ManagedProcess]] = []
        self.respawns = 0
        self._stopping = False

    @property
    def num_shards(self) -> int:
        return len(self.shard_dirs)

    def _build(self) -> None:
        ports = [
            [free_port() for _ in range(self.replicas)]
            for _ in range(self.num_shards)
        ]
        self.processes = []
        for si, shard_dir in enumerate(self.shard_dirs):
            group = []
            for ri in range(self.replicas):
                name = f"shard{si}r{ri}"
                argv = [
                    sys.executable,
                    "-m",
                    "repro",
                    "shard-serve",
                    "--index",
                    str(shard_dir),
                    "--shard",
                    str(si),
                    "--host",
                    "127.0.0.1",
                    "--port",
                    str(ports[si][ri]),
                    "--max-batch",
                    str(self.max_batch),
                    "--max-wait-ms",
                    str(self.max_wait_ms),
                    "--load-mode",
                    self.load_mode,
                    "--ready-file",
                    str(self.workdir / f"{name}.ready"),
                    # Each replica checkpoints into its own directory:
                    # replicas of a shard share the --index snapshot, so
                    # saving back to it from several processes would
                    # rewrite files siblings are serving (fatal under
                    # mmap) and make per-replica snapshot_seq accounting
                    # fictional.  A restart reloads the checkpoint when
                    # one exists.
                    "--snapshot-dir",
                    str(self.workdir / f"{name}.snap"),
                ]
                if self.kernel:
                    argv += ["--kernel", self.kernel]
                group.append(
                    ManagedProcess(
                        name,
                        argv,
                        self.workdir / f"{name}.ready",
                        self.workdir / f"{name}.log",
                    )
                )
            self.processes.append(group)

    def start(self, timeout: float = 60.0) -> List[List]:
        """Spawn every shard server; returns the ``(host, port)`` map
        :class:`~repro.service.cluster.ShardRouter` takes."""
        self._stopping = False
        if not self.processes:
            self._build()
        for group in self.processes:
            for proc in group:
                proc.spawn(timeout=timeout)
        return [[(p.host, p.port) for p in group] for group in self.processes]

    def check_respawn(self, timeout: float = 30.0) -> int:
        """Respawn every dead replica (same argv: same snapshot, same
        port).  Returns how many came back this sweep.  Suspended
        (SIGSTOPped) processes still count as running and are left
        alone; a respawn that itself fails is skipped this sweep and
        retried on the next one."""
        if self._stopping:
            return 0
        respawned = 0
        for group in self.processes:
            for proc in group:
                if proc.proc is None or proc.alive:
                    continue
                try:
                    proc.spawn(timeout=timeout)
                except (ProcessDiedError, TimeoutError, OSError):
                    continue
                respawned += 1
                # Visible immediately: spawn() blocks on the ready
                # handshake, and observers poll this counter while the
                # sweep is still working through the fleet.
                self.respawns += 1
        return respawned

    def stop(self) -> None:
        self._stopping = True
        for group in self.processes:
            for proc in group:
                proc.stop()


class ClusterHarness:
    """R replicas per shard of a sharded snapshot + a router, as processes.

    Parameters
    ----------
    snapshot : directory written by ``ShardedANNIndex.save`` (the
        ``shard-%04d`` subdirectories become the shard servers' indexes;
        all replicas of a shard load the same snapshot, so they start
        bitwise-identical — but each checkpoints into its *own*
        ``--snapshot-dir`` under ``workdir``, never back into here)
    replicas : R, the replication factor
    workdir : where ready-files and logs go (a temp dir by default)
    router_timeout : router→replica request timeout (seconds)
    hedge_ms : router hedged-read delay (0 disables)
    health_interval : router health-sweep period (seconds) — also the
        order of magnitude a killed replica needs to be revived
    log_dir : router ``--log-dir`` (a durable per-shard WAL there);
        the router always starts with ``--recover``, so
        :meth:`restart_router` resumes from the log exactly where a
        killed router died
    supervise : run a background sweep that auto-respawns dead shard
        servers (:meth:`ShardFleet.check_respawn`); killed replicas
        come back and catch up without an explicit ``restart_replica``

    Use as a context manager::

        with ClusterHarness(snap, replicas=2) as cluster:
            with cluster.connect() as client:
                client.query(bits)
            cluster.kill_replica(0, 1)      # cluster keeps answering
            cluster.restart_replica(0, 1)   # catches up from the log
            cluster.wait_replica_alive(0, 1)
    """

    def __init__(
        self,
        snapshot,
        replicas: int = 2,
        workdir=None,
        router_timeout: float = 2.0,
        hedge_ms: float = 0.0,
        health_interval: float = 0.2,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        load_mode: str = "heap",
        log_dir=None,
        supervise: bool = False,
        supervise_interval: float = 0.25,
    ):
        self.snapshot = Path(snapshot)
        self.router_timeout = float(router_timeout)
        self.hedge_ms = float(hedge_ms)
        self.health_interval = float(health_interval)
        self._own_workdir = workdir is None
        self.workdir = Path(workdir) if workdir else Path(
            tempfile.mkdtemp(prefix="repro-cluster-")
        )
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.fleet = ShardFleet(
            snapshot,
            replicas=replicas,
            workdir=self.workdir,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            load_mode=load_mode,
        )
        self.replicas = self.fleet.replicas
        self.shard_dirs = self.fleet.shard_dirs
        self.log_dir = Path(log_dir) if log_dir else None
        self.supervise = bool(supervise)
        self.supervise_interval = float(supervise_interval)
        self.router: Optional[ManagedProcess] = None
        self._supervise_thread = None
        self._supervise_stop = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shard_dirs)

    @property
    def shard_servers(self) -> List[List[ManagedProcess]]:
        return self.fleet.processes

    @property
    def respawns(self) -> int:
        """Shard servers auto-respawned by the supervision sweep."""
        return self.fleet.respawns

    def start(self, timeout: float = 60.0) -> "ClusterHarness":
        """Spawn every shard server, then the router."""
        try:
            self.fleet.start(timeout=timeout)
            shard_args = []
            for si, group in enumerate(self.shard_servers):
                endpoints = ",".join(f"{p.host}:{p.port}" for p in group)
                shard_args += ["--shard", f"{si}={endpoints}"]
            durability = []
            if self.log_dir is not None:
                # --recover from the start: on a fresh directory it is a
                # no-op, and restart_router() then resumes from the WAL
                # with the exact same argv.
                durability = ["--log-dir", str(self.log_dir), "--recover"]
            self.router = ManagedProcess(
                "router",
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "route",
                    *shard_args,
                    "--host",
                    "127.0.0.1",
                    "--port",
                    "0",
                    "--timeout",
                    str(self.router_timeout),
                    "--hedge-ms",
                    str(self.hedge_ms),
                    "--health-interval",
                    str(self.health_interval),
                    *durability,
                    "--ready-file",
                    str(self.workdir / "router.ready"),
                ],
                self.workdir / "router.ready",
                self.workdir / "router.log",
            )
            self.router.spawn(timeout=timeout)
            if self.supervise:
                self._start_supervision()
        except BaseException:
            self.stop()
            raise
        return self

    def _start_supervision(self) -> None:
        import threading

        self._supervise_stop = threading.Event()

        def sweep() -> None:
            while not self._supervise_stop.wait(self.supervise_interval):
                self.fleet.check_respawn()

        self._supervise_thread = threading.Thread(
            target=sweep, name="cluster-supervise", daemon=True
        )
        self._supervise_thread.start()

    def stop(self) -> None:
        if self._supervise_stop is not None:
            self._supervise_stop.set()
        if self._supervise_thread is not None:
            self._supervise_thread.join(timeout=10)
            self._supervise_thread = None
            self._supervise_stop = None
        if self.router is not None:
            self.router.stop()
        self.fleet.stop()

    def __enter__(self) -> "ClusterHarness":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- clients -----------------------------------------------------------
    def connect(self, timeout: float = 30.0):
        """A :class:`~repro.service.client.ServiceClient` to the router."""
        from repro.service.client import ServiceClient

        return ServiceClient(self.router.host, self.router.port, timeout=timeout)

    def replica(self, shard: int, replica: int) -> ManagedProcess:
        return self.shard_servers[shard][replica]

    # -- fault injection ---------------------------------------------------
    def kill_replica(self, shard: int, replica: int) -> None:
        self.replica(shard, replica).kill()

    def suspend_replica(self, shard: int, replica: int) -> None:
        self.replica(shard, replica).suspend()

    def resume_replica(self, shard: int, replica: int) -> None:
        self.replica(shard, replica).resume()

    def restart_replica(self, shard: int, replica: int, timeout: float = 30.0) -> None:
        """Respawn a replica from its latest checkpoint (its own snapshot
        directory) or, if it never checkpointed, the original snapshot;
        the router's health loop replays the write-log tail and revives
        it."""
        self.replica(shard, replica).restart(timeout=timeout)

    def kill_router(self) -> None:
        """SIGKILL the router — the crash the WAL exists to survive."""
        self.router.kill()

    def restart_router(self, timeout: float = 30.0) -> float:
        """Kill (if needed) and respawn the router with the same argv.

        With ``log_dir`` set, the argv carries ``--log-dir/--recover``,
        so the new router rebuilds the write log from the WAL segments
        and replays the gap to every replica before it starts serving —
        it may bind a new port (``--port 0``), so reconnect through
        :meth:`connect`.  Returns the wall-clock restart-to-ready time
        (the router-recovery metric E18 records)."""
        start = time.monotonic()
        self.router.restart(timeout=timeout)
        return time.monotonic() - start

    def replica_alive_in_router(self, shard: int, replica: int) -> bool:
        """Whether the router currently routes to this replica."""
        with self.connect(timeout=self.router_timeout + 5) as client:
            stats = client.stats()
        return bool(stats["shards"][shard]["replicas"][replica]["alive"])

    def wait_replica_alive(
        self, shard: int, replica: int, timeout: float = 30.0
    ) -> float:
        """Block until the router marks the replica alive again (i.e.
        catch-up finished).  Returns how long that took — the
        replica-recovery time ``bench_e18_cluster.py`` records."""
        start = time.monotonic()
        deadline = start + timeout
        while time.monotonic() < deadline:
            if self.replica_alive_in_router(shard, replica):
                return time.monotonic() - start
            time.sleep(min(0.05, self.health_interval / 2))
        raise TimeoutError(
            f"replica {shard}/{replica} was not revived within {timeout}s "
            f"(router log: {self.router.log_file})"
        )

    def shutdown_via_client(self) -> None:
        """Graceful shutdown: ask the router, then each replica, to stop."""
        from repro.service.client import ServiceClient, ServiceError

        try:
            with self.connect(timeout=5) as client:
                client.shutdown()
        except (ServiceError, OSError):
            pass
        for group in self.shard_servers:
            for proc in group:
                if not proc.alive:
                    continue
                try:
                    with ServiceClient(proc.host, proc.port, timeout=5) as client:
                        client.shutdown()
                except (ServiceError, OSError):
                    pass
