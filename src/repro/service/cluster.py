"""Distributed shard serving: a router over replicated shard servers.

This is the multi-process form of
:class:`~repro.service.sharded.ShardedANNIndex`: each shard's
:class:`~repro.core.index.ANNIndex` runs in its own **shard server**
process (``repro shard-serve``, R replicas per shard), and a
**router** (:class:`ShardRouter`, ``repro route``) owns the shard map,
fans queries out, merges by true Hamming distance with the established
``(distance, global id)`` tie-break, and applies writes to every
replica of the owning shard through a deterministic per-shard
**write log** — so any replica of a shard answers bitwise-identically
to any other, and the whole cluster answers bitwise-identically to a
single-process ``ShardedANNIndex`` given the same seed and write
history (the chaos harness in ``tests/utils/cluster_harness.py`` pins
exactly that, under replica kills).

Consistency model (``docs/DISTRIBUTED.md`` for the full matrix):

* Every ``insert``/``delete`` is validated at the router, appended to
  the owning shard's write log with the next sequence number, and then
  sent to each live replica tagged with that number.  Replicas admit
  exactly the next number (:class:`~repro.service.server.WriteSequencer`),
  acknowledge duplicates idempotently, and refuse gaps — so replica
  state is a pure function of (snapshot, applied log prefix).
* The log is the truth: once an entry is logged, it *will* reach every
  replica — immediately when live, or by **catch-up replay** (entries
  after the replica's last applied number) when it comes back.
* A writer-preferring read/write lock gives the cluster the same
  barrier semantics a single :class:`~repro.service.server.AsyncANNService`
  has: queries in flight complete against the pre-write state, the
  write applies to all replicas, later queries see it.

Robustness: per-request timeouts with retry on a sibling replica,
optional hedged reads for slow replicas, a periodic health loop that
marks replicas dead (and routes around them) and revives them through
catch-up, and router metrics (per-replica p50/p99, hedges, retries,
dead/alive transitions) surfaced through the ``stats`` verb.
"""

from __future__ import annotations

import asyncio
import json
import time
from contextlib import asynccontextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.mutable import coerce_delete_ids
from repro.hamming.kernels import active_kernel
from repro.service.replica import (
    AsyncReplicaClient,
    ReplicaRequestError,
    ReplicaUnavailableError,
)
from repro.service.server import WIRE_LINE_LIMIT, _connection_loop, _jsonable
from repro.service.wal import WriteAheadLog

__all__ = [
    "ClusterError",
    "ShardRouter",
    "ShardUnavailableError",
    "parse_shard_map",
    "serve_router",
]

#: Router defaults, shared with the CLI's ``route`` flags.
DEFAULT_TIMEOUT_S = 5.0
DEFAULT_HEDGE_MS = 0.0  # 0 disables hedged reads
DEFAULT_HEALTH_INTERVAL_S = 0.5


class ClusterError(RuntimeError):
    """Cluster-level failure (misconfiguration, replica divergence)."""


class ShardUnavailableError(ClusterError):
    """No replica of a shard could serve the request."""


def parse_shard_map(specs: Sequence[str]) -> List[List[Tuple[str, int]]]:
    """Parse CLI ``--shard`` specs into an ordered replica map.

    Each spec is ``INDEX=HOST:PORT[,HOST:PORT...]``; indexes must cover
    ``0..S-1`` exactly once.  Returns ``map[shard] = [(host, port), ...]``.
    """
    if not specs:
        raise ValueError("need at least one --shard INDEX=HOST:PORT[,...] spec")
    parsed: Dict[int, List[Tuple[str, int]]] = {}
    for spec in specs:
        head, eq, rest = spec.partition("=")
        if not eq:
            raise ValueError(f"malformed shard spec {spec!r}: missing '='")
        try:
            shard = int(head)
        except ValueError:
            raise ValueError(f"malformed shard spec {spec!r}: {head!r} is not an index")
        if shard in parsed:
            raise ValueError(f"shard {shard} specified twice")
        replicas: List[Tuple[str, int]] = []
        for endpoint in rest.split(","):
            host, colon, port = endpoint.strip().rpartition(":")
            if not colon or not host:
                raise ValueError(
                    f"malformed endpoint {endpoint!r} in shard spec {spec!r}"
                )
            try:
                replicas.append((host, int(port)))
            except ValueError:
                raise ValueError(
                    f"malformed port in endpoint {endpoint!r} of shard spec {spec!r}"
                )
        parsed[shard] = replicas
    expected = set(range(len(parsed)))
    if set(parsed) != expected:
        raise ValueError(
            f"shard indexes must cover 0..{len(parsed) - 1}, got {sorted(parsed)}"
        )
    return [parsed[i] for i in range(len(parsed))]


class _ReadWriteLock:
    """Writer-preferring async read/write lock.

    Reads (queries) run concurrently; a write waits for in-flight reads
    and blocks new ones — the cluster-wide analogue of the
    single-service FIFO barrier, at read/write granularity.
    """

    def __init__(self):
        self._readers = 0
        self._writers_waiting = 0
        self._writer_active = False
        self._cond = asyncio.Condition()

    @asynccontextmanager
    async def read_locked(self):
        async with self._cond:
            while self._writer_active or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @asynccontextmanager
    async def write_locked(self):
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            async with self._cond:
                self._writer_active = False
                self._cond.notify_all()


@dataclass
class _Replica:
    """Router-side view of one shard-server process."""

    shard: int
    client: AsyncReplicaClient
    alive: bool = False
    dead_transitions: int = 0
    alive_transitions: int = 0

    def metrics(self) -> dict:
        return {
            **self.client.metrics(),
            "alive": self.alive,
            "dead_transitions": self.dead_transitions,
            "alive_transitions": self.alive_transitions,
        }


@dataclass
class _Mirror:
    """Router-side mirror of one shard's (live rows, allocated id space).

    Seeded from ``info`` at startup and updated from every write ack —
    the router never reimplements compaction, it just trusts the
    replicas' deterministic answers.
    """

    live: int
    id_space: int


class ShardRouter:
    """The coordinator: shard map owner, query merger, write sequencer.

    Parameters
    ----------
    shard_map : ``map[shard] = [(host, port), ...]`` — every replica of
        every shard (see :func:`parse_shard_map`)
    timeout : per-request timeout (seconds) for replica calls; a replica
        that misses it is marked dead and the request retries on a
        sibling
    hedge_ms : after this many milliseconds without an answer, fire the
        same *read* at a sibling replica and take the first success
        (0 disables)
    health_interval : seconds between health-check sweeps (ping live
        replicas, revive dead ones via catch-up)
    wal : a :class:`~repro.service.wal.WriteAheadLog` making the write
        log durable — every write is fsync'd to its shard's segment
        before any replica sees it, and ``snapshot`` truncates the
        segments up to the replicas' persisted coverage (None keeps
        the PR-6 in-memory-only log)
    recover : rebuild the write log from existing WAL segments at
        :meth:`start` and replay the gap to every lagging replica
        (requires ``wal``); without it, pre-existing segments are an
        error — silently appending to a log the router has not read
        would fork history

    Use ``await router.start()`` / ``await router.stop()``, or serve it
    over the wire with :func:`serve_router`.
    """

    def __init__(
        self,
        shard_map: Sequence[Sequence[Tuple[str, int]]],
        timeout: float = DEFAULT_TIMEOUT_S,
        hedge_ms: float = DEFAULT_HEDGE_MS,
        health_interval: float = DEFAULT_HEALTH_INTERVAL_S,
        wal: Optional[WriteAheadLog] = None,
        recover: bool = False,
    ):
        if not shard_map or any(not replicas for replicas in shard_map):
            raise ValueError("every shard needs at least one replica endpoint")
        if recover and wal is None:
            raise ValueError("recover=True needs a WriteAheadLog (--log-dir)")
        self.timeout = float(timeout)
        self.hedge_ms = float(hedge_ms)
        self.health_interval = float(health_interval)
        self._wal = wal
        self._recover = bool(recover)
        self._replicas: List[List[_Replica]] = [
            [
                _Replica(si, AsyncReplicaClient(host, port, timeout=self.timeout))
                for host, port in replicas
            ]
            for si, replicas in enumerate(shard_map)
        ]
        self._mirror: List[_Mirror] = []
        self._log: List[List[dict]] = [[] for _ in self._replicas]
        self._log_base: List[int] = [0 for _ in self._replicas]
        # Last snapshot coverage each replica reported (seeded at start,
        # updated by the snapshot verb and catch-up) — the WAL may only
        # truncate up to the minimum across a shard's replicas.
        self._snapshot_seq: List[List[int]] = [
            [0] * len(group) for group in self._replicas
        ]
        self._rotation: List[int] = [0 for _ in self._replicas]
        self._lock = _ReadWriteLock()
        self._health_task: Optional["asyncio.Task"] = None
        self.d: Optional[int] = None
        self._inner_scheme: Optional[str] = None
        self._started_at = 0.0
        self._counters: Dict[str, int] = {
            key: 0
            for key in (
                "queries",
                "query_batches",
                "batched_queries",
                "inserts",
                "deletes",
                "retries",
                "hedges",
                "hedge_wins",
                "dead_transitions",
                "alive_transitions",
                "catch_ups",
                "replayed_writes",
                "write_rejects",
                "divergence",
                "wal_appends",
                "wal_truncations",
                "recoveries",
                "recovered_writes",
                "respawns",
                "checkpoints",
            )
        }

    # -- topology ----------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._replicas)

    @property
    def scheme_label(self) -> str:
        """Same label single-process merged results carry."""
        return f"sharded({self._inner_scheme}×{self.num_shards})"

    def _offsets(self) -> List[int]:
        """Each shard's first global id — the running sum of the
        mirrored id spaces, exactly like ``ShardedANNIndex.offsets``."""
        out: List[int] = []
        total = 0
        for mirror in self._mirror:
            out.append(total)
            total += mirror.id_space
        return out

    def _id_space(self) -> int:
        return sum(m.id_space for m in self._mirror)

    def _live_total(self) -> int:
        return sum(m.live for m in self._mirror)

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "ShardRouter":
        """Probe every replica, build the shard mirror, start health checks.

        Raises :class:`ClusterError` when a shard has no reachable
        replica, when reachable replicas of one shard disagree on their
        applied write sequence or state (they must be bitwise equal), or
        when a replica reports a different shard id than the map says.

        With a WAL in ``recover`` mode, the write log is first rebuilt
        from the on-disk segments and the gap (entries past each
        replica's applied sequence — including writes that were logged
        but unconfirmed when the previous router died) is replayed to
        every reachable replica, so the strict agreement check below
        runs against the *recovered* state.
        """
        recovered = False
        if self._wal is not None:
            if self._recover and self._wal.has_segments:
                self._wal.open_segments(self.num_shards)
                recovered = True
            elif not self._recover and self._wal.has_segments:
                raise ClusterError(
                    f"{self._wal.log_dir} already holds WAL segments; pass "
                    "--recover to replay them or point --log-dir at a fresh "
                    "directory"
                )
        infos = await asyncio.gather(
            *(
                replica.client.request("info", timeout=self.timeout)
                for group in self._replicas
                for replica in group
            ),
            return_exceptions=True,
        )
        flat = [replica for group in self._replicas for replica in group]
        by_replica = dict(zip((id(r) for r in flat), infos))
        self._mirror = []
        dims = set()
        for si, group in enumerate(self._replicas):
            reachable: List[Tuple[_Replica, dict]] = []
            for replica in group:
                info = by_replica[id(replica)]
                if isinstance(info, Exception):
                    replica.alive = False
                    continue
                reported = info.get("replication", {}).get("shard")
                if reported is not None and int(reported) != si:
                    raise ClusterError(
                        f"replica {replica.client.address} serves shard "
                        f"{reported}, but the map lists it under shard {si}"
                    )
                reachable.append((replica, info))
            if not reachable:
                raise ClusterError(f"shard {si} has no reachable replica")
            if recovered:
                reachable = await self._recover_shard(si, reachable)
            states = {
                (
                    int(info["replication"]["last_seq"]),
                    int(info["index"]["n"]),
                    int(info["index"]["id_space"]),
                )
                for _, info in reachable
            }
            if len(states) != 1:
                raise ClusterError(
                    f"replicas of shard {si} disagree on their state: "
                    f"{sorted(states)} — rebuild them from one snapshot"
                )
            last_seq, live, id_space = states.pop()
            if recovered:
                head = self._wal.base(si) + len(self._wal.entries(si))
                if last_seq != head:
                    raise ClusterError(
                        f"shard {si} replicas sit at seq {last_seq} after "
                        f"recovery, WAL head is {head}"
                    )
                self._log_base[si] = self._wal.base(si)
                self._log[si] = self._wal.entries(si)
            else:
                self._log_base[si] = last_seq
            self._mirror.append(_Mirror(live=live, id_space=id_space))
            dims.add(int(reachable[0][1]["index"]["d"]))
            if si == 0:
                self._inner_scheme = str(reachable[0][1]["index"]["scheme"])
            reached = {id(replica) for replica, _ in reachable}
            for ri, replica in enumerate(group):
                if id(replica) not in reached:
                    # Unreachable: its snapshot coverage is unknown.
                    # Pin it at the log base so truncation cannot pass
                    # entries this replica may still need for catch-up.
                    self._snapshot_seq[si][ri] = self._log_base[si]
            for replica, info in reachable:
                replica.alive = True
                ri = group.index(replica)
                reported = info.get("replication", {}).get("snapshot_seq")
                self._snapshot_seq[si][ri] = (
                    int(reported) if reported is not None else self._log_base[si]
                )
        if len(dims) != 1:
            raise ClusterError(f"shards disagree on dimension: {sorted(dims)}")
        self.d = dims.pop()
        if self._wal is not None and not recovered:
            # Fresh log: segments start at the replicas' agreed sequence.
            self._wal.create_segments(list(self._log_base))
        self._started_at = time.monotonic()
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop(), name="router-health"
        )
        return self

    async def _recover_shard(
        self, si: int, reachable: List[Tuple[_Replica, dict]]
    ) -> List[Tuple[_Replica, dict]]:
        """Reconcile one shard's replicas against the recovered WAL.

        Replays the entries past each replica's applied sequence (its
        sequencer acks already-applied numbers idempotently, so a
        replica that raced ahead of the last ack is safe), then
        re-probes so the caller's agreement check sees post-replay
        state.  A replica ahead of the WAL head means the log is stale
        (wrong directory, or writes happened through another router):
        refusing loudly beats silently forking history.
        """
        base = self._wal.base(si)
        entries = self._wal.entries(si)
        head = base + len(entries)
        for replica, info in reachable:
            last = int(info["replication"]["last_seq"])
            if last > head:
                raise ClusterError(
                    f"replica {replica.client.address} applied seq {last}, "
                    f"ahead of the WAL head {head} — stale or foreign log "
                    f"under {self._wal.log_dir}"
                )
            if last < base:
                raise ClusterError(
                    f"replica {replica.client.address} is at seq {last}, "
                    f"behind the WAL base {base}; its snapshot predates the "
                    "log's truncation point — restart it from a newer snapshot"
                )
        for replica, info in reachable:
            last = int(info["replication"]["last_seq"])
            replayed = 0
            for entry in entries[last - base:]:
                await replica.client.request(
                    entry["op"],
                    timeout=self.timeout,
                    seq=entry["seq"],
                    **entry["payload"],
                )
                replayed += 1
            if replayed:
                self._counters["recoveries"] += 1
                self._counters["recovered_writes"] += replayed
        fresh = await asyncio.gather(
            *(
                replica.client.request("info", timeout=self.timeout)
                for replica, _ in reachable
            )
        )
        return [(replica, info) for (replica, _), info in zip(reachable, fresh)]

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        for group in self._replicas:
            for replica in group:
                await replica.client.close()
        if self._wal is not None:
            self._wal.close()

    async def __aenter__(self) -> "ShardRouter":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- replica plumbing --------------------------------------------------
    def _mark_dead(self, replica: _Replica) -> None:
        if replica.alive:
            replica.alive = False
            replica.dead_transitions += 1
            self._counters["dead_transitions"] += 1

    def _mark_alive(self, replica: _Replica) -> None:
        if not replica.alive:
            replica.alive = True
            replica.alive_transitions += 1
            self._counters["alive_transitions"] += 1

    async def _request(
        self, replica: _Replica, op: str, payload: dict, timeout: Optional[float] = None
    ) -> dict:
        """One replica call; transport failure marks the replica dead."""
        try:
            return await replica.client.request(op, timeout=timeout, **payload)
        except ReplicaUnavailableError:
            self._mark_dead(replica)
            raise

    async def _hedged(
        self, primary: _Replica, sibling: _Replica, op: str, payload: dict
    ) -> dict:
        """Read from ``primary``; fire ``sibling`` after ``hedge_ms``."""
        first = asyncio.ensure_future(self._request(primary, op, payload))
        done, _ = await asyncio.wait({first}, timeout=self.hedge_ms / 1000.0)
        if done:
            return first.result()
        self._counters["hedges"] += 1
        second = asyncio.ensure_future(self._request(sibling, op, payload))
        tasks = {first, second}
        last_exc: Optional[BaseException] = None
        while tasks:
            done, tasks = await asyncio.wait(tasks, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                exc = task.exception()
                if exc is None:
                    for pending in tasks:
                        pending.cancel()
                    if tasks:
                        await asyncio.gather(*tasks, return_exceptions=True)
                    if task is second:
                        self._counters["hedge_wins"] += 1
                    return task.result()
                last_exc = exc
        raise last_exc  # both attempts failed (each already marked dead)

    def _read_order(self, si: int) -> List[_Replica]:
        """Live replicas of a shard, rotated for load spread."""
        alive = [replica for replica in self._replicas[si] if replica.alive]
        if not alive:
            return []
        start = self._rotation[si] % len(alive)
        self._rotation[si] += 1
        return alive[start:] + alive[:start]

    async def _shard_read(
        self, si: int, op: str, payload: dict, hedge: bool = False
    ) -> dict:
        """A read against shard ``si``: retry on siblings, optional hedge.

        Only *live* replicas serve reads — a dead replica may be missing
        writes and would break bitwise equivalence.
        """
        order = self._read_order(si)
        if not order:
            raise ShardUnavailableError(f"shard {si} has no live replicas")
        last_exc: Optional[Exception] = None
        for attempt, replica in enumerate(order):
            if not replica.alive:  # marked dead by a concurrent request
                continue
            if attempt > 0:
                self._counters["retries"] += 1
            try:
                if hedge and self.hedge_ms > 0 and attempt == 0:
                    sibling = next((r for r in order[1:] if r.alive), None)
                    if sibling is not None:
                        return await self._hedged(replica, sibling, op, payload)
                return await self._request(replica, op, payload)
            except ReplicaUnavailableError as exc:
                last_exc = exc
        raise ShardUnavailableError(
            f"shard {si}: no replica answered {op!r} ({last_exc})"
        )

    # -- the write log -----------------------------------------------------
    def _append_log(self, si: int, op: str, payload: dict) -> int:
        """Append one entry to shard ``si``'s log; returns its seq.

        With a WAL, the entry is fsync'd to the shard's segment *first*
        — no replica may see a write the log could lose.
        """
        seq = self._log_base[si] + len(self._log[si]) + 1
        if self._wal is not None:
            durable = self._wal.append(si, op, payload)
            if durable != seq:
                raise ClusterError(
                    f"shard {si}: WAL assigned seq {durable}, router log "
                    f"expected {seq} — log and WAL have diverged"
                )
            self._counters["wal_appends"] += 1
        self._log[si].append({"seq": seq, "op": op, "payload": payload})
        return seq

    async def _replicated_write(self, si: int, op: str, payload: dict, seq: int) -> dict:
        """Send one logged write to every live replica of its shard.

        Succeeds with the first clean ack (all replicas answer
        identically — checked; a mismatch counts as divergence).  A
        replica that rejects the write (sequence gap: it silently missed
        something) is quarantined for catch-up.  When *no* replica
        acks, the entry stays in the log — every replica will apply it
        on catch-up — but the caller gets an error, because the write
        cannot be confirmed (``docs/DISTRIBUTED.md``, failure matrix).
        """
        targets = [replica for replica in self._replicas[si] if replica.alive]
        results = await asyncio.gather(
            *(
                self._request(replica, op, {**payload, "seq": seq})
                for replica in targets
            ),
            return_exceptions=True,
        )
        ack: Optional[dict] = None
        for replica, result in zip(targets, results):
            if isinstance(result, ReplicaRequestError):
                # Deterministic rejection after router-side validation
                # means the replica's sequencer refused a gap: it missed
                # a write while marked alive.  Quarantine + catch up.
                self._counters["write_rejects"] += 1
                self._mark_dead(replica)
            elif isinstance(result, Exception):
                pass  # transport failure; _request already marked it dead
            elif ack is None:
                ack = result
            elif not result.get("duplicate") and (
                result.get("ids") != ack.get("ids")
                or result.get("live") != ack.get("live")
                or result.get("id_space") != ack.get("id_space")
            ):
                self._counters["divergence"] += 1
        if ack is None:
            raise ShardUnavailableError(
                f"shard {si}: write seq {seq} reached no live replica "
                "(logged; replicas will catch up, but the write is unconfirmed)"
            )
        return ack

    # -- queries -----------------------------------------------------------
    @staticmethod
    def _merge_one(
        responses: Sequence[dict], offsets: Sequence[int], inner: str, label: str
    ) -> dict:
        """Merge one query's per-shard responses, bitwise-identically to
        ``ShardedANNIndex.query_batch``: probes fold round-by-round
        (parallel shards), best ``(true distance, global id)`` wins."""
        probes_per_round: List[int] = []
        best: Optional[Tuple[int, int, int, dict]] = None
        answered = 0
        for si, response in enumerate(responses):
            for i, p in enumerate(response.get("probes_per_round", [])):
                if i >= len(probes_per_round):
                    probes_per_round.extend([0] * (i + 1 - len(probes_per_round)))
                probes_per_round[i] += int(p)
            if response.get("answer_index") is None:
                continue
            answered += 1
            distance = response.get("distance")
            if distance is None:
                raise ClusterError(
                    f"shard {si} answered without a distance field; "
                    "its server predates distributed serving"
                )
            global_id = offsets[si] + int(response["answer_index"])
            if best is None or (int(distance), global_id) < (best[0], best[1]):
                best = (int(distance), global_id, si, response)
        meta: Dict[str, object] = {
            "shards": len(responses),
            "shards_answered": answered,
            "inner": inner,
        }
        if best is not None:
            meta.update(
                {
                    "shard": best[2],
                    "distance": best[0],
                    "winner_meta": dict(best[3].get("meta", {})),
                }
            )
        return {
            "ok": True,
            "answered": best is not None,
            "answer_index": None if best is None else best[1],
            "probes": sum(probes_per_round),
            "rounds": sum(1 for p in probes_per_round if p > 0),
            "probes_per_round": probes_per_round,
            "scheme": label,
            "distance": None if best is None else best[0],
            "meta": meta,
        }

    def _check_query(self, bits) -> None:
        if not isinstance(bits, list) or not bits:
            raise ValueError("'query' needs a 'bits' array of 0/1 values")
        if len(bits) != self.d:
            raise ValueError(
                f"query has {len(bits)} bits, index dimension is {self.d}"
            )

    async def query(self, bits) -> dict:
        """One query through every shard; best true distance wins."""
        self._check_query(bits)
        async with self._lock.read_locked():
            offsets = self._offsets()
            responses = await asyncio.gather(
                *(
                    self._shard_read(si, "query", {"bits": bits}, hedge=True)
                    for si in range(self.num_shards)
                )
            )
            self._counters["queries"] += 1
            return self._merge_one(
                responses, offsets, self._inner_scheme, self.scheme_label
            )

    async def query_batch(self, queries) -> List[dict]:
        """A whole batch through every shard's batched path, then merge."""
        if not isinstance(queries, list) or not queries:
            raise ValueError(
                "'query_batch' needs a non-empty 'queries' list of bit rows"
            )
        for bits in queries:
            self._check_query(bits)
        async with self._lock.read_locked():
            offsets = self._offsets()
            per_shard = await asyncio.gather(
                *(
                    self._shard_read(
                        si, "query_batch", {"queries": queries}, hedge=True
                    )
                    for si in range(self.num_shards)
                )
            )
            self._counters["query_batches"] += 1
            self._counters["batched_queries"] += len(queries)
            return [
                self._merge_one(
                    [per_shard[si]["results"][qi] for si in range(self.num_shards)],
                    offsets,
                    self._inner_scheme,
                    self.scheme_label,
                )
                for qi in range(len(queries))
            ]

    # -- writes ------------------------------------------------------------
    async def insert(self, points) -> dict:
        """Insert bit rows; greedy per-point routing to the emptiest shard.

        Routing replicates ``ShardedANNIndex.insert`` against the
        mirror: each point goes to the shard with the fewest live rows
        at that moment (ties → smallest shard index), and returned
        global ids are computed against the post-insert offsets.
        """
        arr = np.asarray(points, dtype=np.uint8)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.d:
            raise ValueError(
                f"bit rows need shape (m, {self.d}), got {tuple(arr.shape)}"
            )
        async with self._lock.write_locked():
            if arr.shape[0] == 0:
                return {
                    "ok": True,
                    "ids": [],
                    "live": self._live_total(),
                    "id_space": self._id_space(),
                }
            live = [mirror.live for mirror in self._mirror]
            routed: List[List[list]] = [[] for _ in range(self.num_shards)]
            routing: List[Tuple[int, int]] = []
            for i in range(arr.shape[0]):
                si = min(range(self.num_shards), key=lambda s: (live[s], s))
                routing.append((si, len(routed[si])))
                routed[si].append([int(b) for b in arr[i]])
                live[si] += 1
            pending = [
                (si, self._append_log(si, "insert", {"points": batch}), batch)
                for si, batch in enumerate(routed)
                if batch
            ]
            results = await asyncio.gather(
                *(
                    self._replicated_write(si, "insert", {"points": batch}, seq)
                    for si, seq, batch in pending
                ),
                return_exceptions=True,
            )
            acks: Dict[int, dict] = {}
            failure: Optional[Exception] = None
            for (si, _, _), result in zip(pending, results):
                if isinstance(result, Exception):
                    failure = failure or result
                else:
                    acks[si] = result
                    self._mirror[si] = _Mirror(
                        live=int(result["live"]), id_space=int(result["id_space"])
                    )
            if failure is not None:
                raise failure
            offsets = self._offsets()
            self._counters["inserts"] += 1
            return {
                "ok": True,
                "ids": [
                    offsets[si] + int(acks[si]["ids"][pos]) for si, pos in routing
                ],
                "live": self._live_total(),
                "id_space": self._id_space(),
            }

    def _locate(self, gid: int, offsets: List[int]) -> Tuple[int, int]:
        """Global id → (shard, local id), mirroring
        ``ShardedANNIndex._locate`` (same errors included)."""
        for si in range(self.num_shards - 1, -1, -1):
            if offsets[si] <= gid:
                local = gid - offsets[si]
                if local >= self._mirror[si].id_space:
                    break
                return si, local
        raise ValueError(f"id {gid} out of range [0, {self._id_space()})")

    async def delete(self, ids) -> dict:
        """Delete by global id, pre-validated across every shard.

        Validation replicates ``ShardedANNIndex.delete``: all ids are
        located through the current offsets and checked live (via the
        ``check_ids`` verb on a live replica) *before* anything is
        logged, so a bad id leaves the whole cluster unchanged.
        """
        id_arr = coerce_delete_ids(ids)
        async with self._lock.write_locked():
            if id_arr.size == 0:
                return {
                    "ok": True,
                    "deleted": 0,
                    "live": self._live_total(),
                    "id_space": self._id_space(),
                }
            offsets = self._offsets()
            per_shard: List[List[Tuple[int, int]]] = [
                [] for _ in range(self.num_shards)
            ]
            for gid in id_arr:
                si, local = self._locate(int(gid), offsets)
                per_shard[si].append((int(gid), local))
            for si, pairs in enumerate(per_shard):
                if not pairs:
                    continue
                check = await self._shard_read(
                    si, "check_ids", {"ids": [local for _, local in pairs]}
                )
                for (gid, _), is_live in zip(pairs, check["live"]):
                    if not is_live:
                        raise ValueError(f"id {gid} is already deleted")
            pending = [
                (
                    si,
                    self._append_log(
                        si, "delete", {"ids": [local for _, local in pairs]}
                    ),
                    [local for _, local in pairs],
                )
                for si, pairs in enumerate(per_shard)
                if pairs
            ]
            results = await asyncio.gather(
                *(
                    self._replicated_write(si, "delete", {"ids": locals_}, seq)
                    for si, seq, locals_ in pending
                ),
                return_exceptions=True,
            )
            failure: Optional[Exception] = None
            for (si, _, _), result in zip(pending, results):
                if isinstance(result, Exception):
                    failure = failure or result
                else:
                    self._mirror[si] = _Mirror(
                        live=int(result["live"]), id_space=int(result["id_space"])
                    )
            if failure is not None:
                raise failure
            self._counters["deletes"] += 1
            return {
                "ok": True,
                "deleted": int(id_arr.size),
                "live": self._live_total(),
                "id_space": self._id_space(),
            }

    # -- checkpointing -----------------------------------------------------
    async def snapshot(self) -> dict:
        """Checkpoint: every live replica snapshots to its own snapshot
        directory, then the WAL truncates up to the minimum persisted
        coverage.

        Runs under the write lock, so every replica saves the same
        applied prefix.  A dead replica keeps its last known coverage —
        truncation never passes entries it may still need for catch-up.
        Replicas started without a default snapshot directory reject
        the bare ``snapshot`` verb; they simply keep their old coverage
        (and pin truncation) rather than failing the checkpoint.
        """
        async with self._lock.write_locked():
            saved: List[dict] = []
            for si, group in enumerate(self._replicas):
                for ri, replica in enumerate(group):
                    if not replica.alive:
                        continue
                    try:
                        ack = await self._request(replica, "snapshot", {})
                    except ReplicaUnavailableError:
                        continue  # marked dead; coverage stays pinned
                    except ReplicaRequestError as exc:
                        saved.append(
                            {
                                "shard": si,
                                "replica": replica.client.address,
                                "error": str(exc),
                            }
                        )
                        continue
                    self._snapshot_seq[si][ri] = int(ack.get("write_seq", 0))
                    saved.append(
                        {
                            "shard": si,
                            "replica": replica.client.address,
                            "path": ack.get("path"),
                            "write_seq": self._snapshot_seq[si][ri],
                        }
                    )
            truncated: List[int] = []
            for si in range(self.num_shards):
                upto = min(self._snapshot_seq[si])
                dropped = 0
                if self._wal is not None:
                    dropped = self._wal.truncate(si, upto)
                    if dropped:
                        self._counters["wal_truncations"] += 1
                        base = self._wal.base(si)
                        self._log[si] = self._log[si][base - self._log_base[si]:]
                        self._log_base[si] = base
                truncated.append(dropped)
            self._counters["checkpoints"] += 1
            return {
                "ok": True,
                "replicas": saved,
                "truncated": truncated,
                "write_seq": [min(seqs) for seqs in self._snapshot_seq],
            }

    # -- health + catch-up -------------------------------------------------
    async def _catch_up(self, replica: _Replica) -> None:
        """Replay the write-log tail to a recovered replica, then revive it.

        Runs under the write lock, so the log cannot grow mid-replay:
        after the replay the replica has applied exactly the log head
        and is bitwise-identical to its live siblings.  Duplicate
        sequence numbers (writes the replica applied from its socket
        buffer before dying) are acked idempotently by its sequencer.
        """
        si = replica.shard
        async with self._lock.write_locked():
            info = await replica.client.request("info", timeout=self.timeout)
            last = int(info["replication"]["last_seq"])
            reported = info.get("replication", {}).get("snapshot_seq")
            if reported is not None:
                ri = self._replicas[si].index(replica)
                self._snapshot_seq[si][ri] = int(reported)
            base = self._log_base[si]
            head = base + len(self._log[si])
            if last > head:
                raise ClusterError(
                    f"replica {replica.client.address} applied seq {last}, "
                    f"ahead of the router log head {head} — stale router?"
                )
            if last < base:
                raise ClusterError(
                    f"replica {replica.client.address} is at seq {last}, "
                    f"behind the router's log base {base}; restart it from "
                    "a newer snapshot"
                )
            replayed = 0
            for entry in self._log[si][last - base:]:
                await replica.client.request(
                    entry["op"],
                    timeout=self.timeout,
                    seq=entry["seq"],
                    **entry["payload"],
                )
                replayed += 1
            self._counters["catch_ups"] += 1
            self._counters["replayed_writes"] += replayed
            self._mark_alive(replica)

    async def _health_loop(self) -> None:
        """Ping live replicas (mark dead on failure); revive dead ones."""
        while True:
            await asyncio.sleep(self.health_interval)

            async def check(replica: _Replica) -> None:
                try:
                    if replica.alive:
                        await replica.client.request("ping", timeout=self.timeout)
                    else:
                        await self._catch_up(replica)
                except (ReplicaUnavailableError, ReplicaRequestError):
                    self._mark_dead(replica)
                except ClusterError:
                    pass  # unrecoverable by replay; stays dead, stays counted

            await asyncio.gather(
                *(
                    check(replica)
                    for group in self._replicas
                    for replica in group
                ),
                return_exceptions=True,
            )

    # -- introspection -----------------------------------------------------
    async def describe(self) -> dict:
        """The router's ``info`` response body (index + cluster views)."""
        async with self._lock.read_locked():
            generations: List[Optional[int]] = []
            for si in range(self.num_shards):
                try:
                    info = await self._shard_read(si, "info", {})
                    shard_gens = info["index"].get("generations") or [None]
                    generations.append(shard_gens[0])
                except ClusterError:
                    generations.append(None)
            return {
                "index": {
                    "n": self._live_total(),
                    "d": self.d,
                    "scheme": self.scheme_label,
                    "shards": self.num_shards,
                    "generations": generations,
                    "id_space": self._id_space(),
                    "spec": None,
                    "kernel": active_kernel(),
                },
                "policy": None,
                "cluster": self._topology(),
            }

    def _topology(self) -> dict:
        return {
            "shards": [
                {
                    "shard": si,
                    "replicas": [r.client.address for r in group],
                    "alive": [r.alive for r in group],
                    "log_base": self._log_base[si],
                    "log_head": self._log_base[si] + len(self._log[si]),
                    "live": self._mirror[si].live if self._mirror else None,
                    "id_space": self._mirror[si].id_space if self._mirror else None,
                }
                for si, group in enumerate(self._replicas)
            ],
            "timeout_s": self.timeout,
            "hedge_ms": self.hedge_ms,
            "health_interval_s": self.health_interval,
            "wal": None if self._wal is None else self._wal.describe(),
        }

    def record_respawns(self, count: int) -> None:
        """Credit supervisor-driven replica respawns to the stats counters."""
        self._counters["respawns"] += int(count)

    def stats(self) -> dict:
        """Router counters + per-replica latency/failure metrics."""
        uptime = time.monotonic() - self._started_at if self._started_at else 0.0
        return {
            "role": "router",
            "kernel": active_kernel(),
            **self._counters,
            "uptime_s": round(uptime, 3),
            "wal": None if self._wal is None else self._wal.describe(),
            "shards": [
                {
                    "shard": si,
                    "log_head": self._log_base[si] + len(self._log[si]),
                    "replicas": [replica.metrics() for replica in group],
                }
                for si, group in enumerate(self._replicas)
            ],
        }


# -- the wire layer --------------------------------------------------------
async def _handle_router_request(
    router: ShardRouter,
    shutdown: "asyncio.Event",
    line: bytes,
    writer: "asyncio.StreamWriter",
    write_lock: "asyncio.Lock",
) -> None:
    """One router request: same protocol (and error contract) as
    :func:`repro.service.server._handle_request`, dispatched to the
    router instead of a local service."""
    request_id = None
    try:
        request = json.loads(line)
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        request_id = request.get("id")
        op = request.get("op")
        if op == "query":
            bits = request.get("bits")
            if bits is None:
                raise ValueError("'query' needs a 'bits' array of 0/1 values")
            response = await router.query(bits)
        elif op == "query_batch":
            queries = request.get("queries")
            results = await router.query_batch(queries)
            response = {"ok": True, "results": results}
        elif op == "insert":
            points = request.get("points")
            if not points:
                raise ValueError("'insert' needs a non-empty 'points' list of bit rows")
            response = await router.insert(points)
        elif op == "delete":
            ids = request.get("ids")
            if not ids:
                raise ValueError("'delete' needs a non-empty 'ids' list")
            response = await router.delete(ids)
        elif op == "snapshot":
            if request.get("path") is not None:
                raise ValueError(
                    "the router checkpoints each replica to its own "
                    "snapshot directory; 'snapshot' takes no 'path' here "
                    "(snapshot a shard server directly to save elsewhere)"
                )
            response = await router.snapshot()
        elif op == "stats":
            response = {"ok": True, "stats": router.stats()}
        elif op == "info":
            body = await router.describe()
            response = {"ok": True, **body}
        elif op == "ping":
            response = {"ok": True, "op": "ping"}
        elif op == "shutdown":
            response = {"ok": True, "stopping": True}
        else:
            raise ValueError(f"unknown op {op!r}")
    except Exception as exc:
        response = {"ok": False, "error": str(exc)}
        op = None
    response["id"] = request_id
    payload = (json.dumps(_jsonable(response), sort_keys=True) + "\n").encode()
    try:
        async with write_lock:
            writer.write(payload)
            try:
                await writer.drain()
            except ConnectionError:
                pass
    finally:
        if op == "shutdown":
            shutdown.set()


async def serve_router(
    shard_map: Sequence[Sequence[Tuple[str, int]]],
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: float = DEFAULT_TIMEOUT_S,
    hedge_ms: float = DEFAULT_HEDGE_MS,
    health_interval: float = DEFAULT_HEALTH_INTERVAL_S,
    ready_cb: Optional[Callable[[str, int], None]] = None,
    log_dir: Optional[str] = None,
    recover: bool = False,
    supervisor: Optional[Callable[[], int]] = None,
    supervise_interval: float = 1.0,
) -> None:
    """Serve a :class:`ShardRouter` over TCP until ``shutdown``.

    Clients speak to it exactly like to a single ``repro serve``
    process — :class:`~repro.service.client.ServiceClient` works
    unchanged — but every answer is merged from the shard servers in
    ``shard_map``.  ``ready_cb(host, port)`` fires once listening (the
    CLI writes ``--ready-file`` from it).

    ``log_dir`` makes the write log durable (one WAL segment per shard
    there); ``recover`` replays existing segments at startup.
    ``supervisor`` is a callable returning the number of shard-server
    processes it respawned this sweep — it runs in an executor every
    ``supervise_interval`` seconds (it blocks on process management),
    and its count lands in the router's ``respawns`` stat; the health
    loop then catches the respawned replicas up by replay.
    """
    wal = WriteAheadLog(log_dir) if log_dir is not None else None
    router = ShardRouter(
        shard_map,
        timeout=timeout,
        hedge_ms=hedge_ms,
        health_interval=health_interval,
        wal=wal,
        recover=recover,
    )
    await router.start()
    shutdown = asyncio.Event()

    def handler(line, writer, write_lock):
        return _handle_router_request(router, shutdown, line, writer, write_lock)

    async def supervise() -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(supervise_interval)
            respawned = await loop.run_in_executor(None, supervisor)
            if respawned:
                router.record_respawns(respawned)

    server = None
    supervise_task = None
    try:
        server = await asyncio.start_server(
            lambda r, w: _connection_loop(handler, r, w),
            host,
            port,
            limit=WIRE_LINE_LIMIT,
        )
        bound = server.sockets[0].getsockname()
        if ready_cb is not None:
            ready_cb(bound[0], bound[1])
        if supervisor is not None:
            supervise_task = asyncio.get_running_loop().create_task(
                supervise(), name="router-supervise"
            )
        await shutdown.wait()
    finally:
        if supervise_task is not None:
            supervise_task.cancel()
            try:
                await supervise_task
            except asyncio.CancelledError:
                pass
        if server is not None:
            server.close()
            await server.wait_closed()
        await router.stop()
