"""Batched query serving on top of the cell-probe simulator.

The paper's model is per-query: ``k`` rounds of parallel probes, each
query on its own.  This package adds the serving layer the ROADMAP's
"heavy traffic" north star asks for: :class:`~repro.service.engine.BatchQueryEngine`
executes *many* concurrent queries by advancing their per-query plans in
lockstep and vectorizing each sweep's work across the whole batch —
sketch addresses via one :class:`~repro.sketch.parity.ParitySketch`
application per level, and table cells via the structures' batched
content functions over the packed-uint64 popcount kernels in
:mod:`repro.hamming.distance`.

Every query keeps its own :class:`~repro.cellprobe.session.ProbeSession`
and :class:`~repro.cellprobe.accounting.ProbeAccountant`, so the paper's
limited-adaptivity semantics and per-query probe/round ledger are
untouched: batched results are identical to a sequential ``query`` loop
under the same seed.
"""

from repro.service.engine import BatchQueryEngine, BatchStats

__all__ = ["BatchQueryEngine", "BatchStats"]
