"""Batched query serving on top of the cell-probe simulator.

The paper's model is per-query: ``k`` rounds of parallel probes, each
query on its own.  This package adds the serving layer the ROADMAP's
"heavy traffic" north star asks for: :class:`~repro.service.engine.BatchQueryEngine`
executes *many* concurrent queries by advancing their per-query plans in
lockstep and vectorizing each sweep's work across the whole batch —
sketch addresses via one :class:`~repro.sketch.parity.ParitySketch`
application per level, and table cells via the structures' batched
content functions over the packed-uint64 popcount kernels in
:mod:`repro.hamming.distance`.

Every query keeps its own :class:`~repro.cellprobe.session.ProbeSession`
and :class:`~repro.cellprobe.accounting.ProbeAccountant`, so the paper's
limited-adaptivity semantics and per-query probe/round ledger are
untouched: batched results are identical to a sequential ``query`` loop
under the same seed.
"""

from repro.service.engine import BatchQueryEngine, BatchStats

__all__ = [
    "BatchQueryEngine",
    "BatchStats",
    "ShardedANNIndex",
    "shard_bounds",
    "shard_seed",
]

_SHARDED_EXPORTS = ("ShardedANNIndex", "shard_bounds", "shard_seed")


def __getattr__(name: str):
    # repro.core.index imports repro.service.engine while repro.core is
    # still initializing, and repro.service.sharded needs the finished
    # repro.core.index — resolving the sharded exports lazily (PEP 562)
    # keeps the package import acyclic.
    if name in _SHARDED_EXPORTS:
        from repro.service import sharded

        return getattr(sharded, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
