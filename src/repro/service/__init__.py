"""Batched query serving on top of the cell-probe simulator.

The paper's model is per-query: ``k`` rounds of parallel probes, each
query on its own.  This package adds the serving layer the ROADMAP's
"heavy traffic" north star asks for: :class:`~repro.service.engine.BatchQueryEngine`
executes *many* concurrent queries by advancing their per-query plans in
lockstep and vectorizing each sweep's work across the whole batch —
sketch addresses via one :class:`~repro.sketch.parity.ParitySketch`
application per level, and table cells via the structures' batched
content functions over the packed-uint64 popcount kernels in
:mod:`repro.hamming.distance`.

Every query keeps its own :class:`~repro.cellprobe.session.ProbeSession`
and :class:`~repro.cellprobe.accounting.ProbeAccountant`, so the paper's
limited-adaptivity semantics and per-query probe/round ledger are
untouched: batched results are identical to a sequential ``query`` loop
under the same seed.

On top of the engine sit :class:`~repro.service.sharded.ShardedANNIndex`
(partition + fan-out + true-distance merge) and the online layer
(``docs/SERVING.md``): :class:`~repro.service.server.AsyncANNService`
coalesces concurrent single-query requests into adaptive micro-batches,
:func:`~repro.service.server.serve` exposes it over newline-delimited
JSON TCP (``python -m repro serve``), and
:class:`~repro.service.client.ServiceClient` is the synchronous client.

The distributed form (``docs/DISTRIBUTED.md``) promotes each shard to
its own replicated server process: :func:`~repro.service.server.serve`
with a ``shard_id`` runs a shard server (``python -m repro
shard-serve``), and :class:`~repro.service.cluster.ShardRouter`
(``python -m repro route``) owns the shard map, merges by true
distance, and replicates writes through a deterministic per-shard
write log — bitwise-identical to a single-process
:class:`~repro.service.sharded.ShardedANNIndex`.
"""

from repro.service.engine import BatchQueryEngine, BatchStats

__all__ = [
    "AsyncANNService",
    "BatchQueryEngine",
    "BatchStats",
    "ClusterError",
    "RemoteResult",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceStateError",
    "ServiceTimeoutError",
    "ShardRouter",
    "ShardUnavailableError",
    "ShardedANNIndex",
    "WalCorruptionError",
    "WalError",
    "WriteAheadLog",
    "WriteSequencer",
    "parse_shard_map",
    "serve",
    "serve_router",
    "shard_bounds",
    "shard_seed",
]

# Lazy exports (PEP 562): repro.core.index imports repro.service.engine
# while repro.core is still initializing, and the heavier submodules
# (sharded needs the finished repro.core.index; server/client pull in
# asyncio/socket) resolve on first touch, keeping the package import
# acyclic and cheap.
_LAZY_EXPORTS = {
    "ShardedANNIndex": "repro.service.sharded",
    "shard_bounds": "repro.service.sharded",
    "shard_seed": "repro.service.sharded",
    "AsyncANNService": "repro.service.server",
    "ServiceMetrics": "repro.service.server",
    "ServiceStateError": "repro.service.server",
    "WriteSequencer": "repro.service.server",
    "serve": "repro.service.server",
    "RemoteResult": "repro.service.client",
    "ServiceClient": "repro.service.client",
    "ServiceError": "repro.service.client",
    "ServiceTimeoutError": "repro.service.client",
    "ClusterError": "repro.service.cluster",
    "ShardRouter": "repro.service.cluster",
    "ShardUnavailableError": "repro.service.cluster",
    "parse_shard_map": "repro.service.cluster",
    "serve_router": "repro.service.cluster",
    "WalCorruptionError": "repro.service.wal",
    "WalError": "repro.service.wal",
    "WriteAheadLog": "repro.service.wal",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
