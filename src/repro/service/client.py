"""Synchronous client for the NDJSON serving protocol.

:class:`ServiceClient` speaks the wire protocol of
:func:`repro.service.server.serve` (one JSON object per line, matched by
``id``; shapes documented in ``docs/SERVING.md``) over a blocking
socket.  It exists for tests, examples, and shell scripting — the CI
serve smoke test is exactly::

    with ServiceClient(port=port) as client:
        result = client.query(bits)
        client.stats()
        client.shutdown()

Responses may arrive out of order when requests are pipelined (the
server handles each line as its own task); the client parks non-matching
responses and replays them when their request asks.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["RemoteResult", "ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The server reported an error, or the connection broke."""


@dataclass(frozen=True)
class RemoteResult:
    """A ``query`` response: the answer plus its probe/round ledger.

    The accounting fields mirror :class:`~repro.core.result.QueryResult`
    one-to-one, so a remote answer can be compared field-by-field with a
    local ``index.query`` call (the protocol tests do exactly that).
    """

    answer_index: Optional[int]
    probes: int
    rounds: int
    probes_per_round: List[int]
    scheme: str
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def answered(self) -> bool:
        return self.answer_index is not None

    @classmethod
    def from_response(cls, response: Dict[str, object]) -> "RemoteResult":
        return cls(
            answer_index=response.get("answer_index"),
            probes=int(response["probes"]),
            rounds=int(response["rounds"]),
            probes_per_round=[int(p) for p in response["probes_per_round"]],
            scheme=str(response.get("scheme", "")),
            meta=dict(response.get("meta", {})),
        )


class ServiceClient:
    """Blocking TCP client for one serving endpoint.

    Usable as a context manager; every method raises
    :class:`ServiceError` when the server answers ``ok: false`` or the
    connection drops.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7878, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self._parked: Dict[object, dict] = {}

    # -- plumbing ----------------------------------------------------------
    def _request(self, op: str, **payload) -> dict:
        request_id = self._next_id
        self._next_id += 1
        line = json.dumps({"op": op, "id": request_id, **payload})
        self._file.write(line.encode() + b"\n")
        self._file.flush()
        while True:
            if request_id in self._parked:
                response = self._parked.pop(request_id)
            else:
                raw = self._file.readline()
                if not raw:
                    raise ServiceError("server closed the connection")
                response = json.loads(raw)
                if response.get("id") != request_id:
                    self._parked[response.get("id")] = response
                    continue
            if not response.get("ok"):
                raise ServiceError(response.get("error", "unknown server error"))
            return response

    # -- verbs -------------------------------------------------------------
    def query(self, bits) -> RemoteResult:
        """Answer one query given as a length-``d`` 0/1 bit vector."""
        arr = np.asarray(bits)
        if arr.dtype == np.uint64:
            raise ValueError(
                "the wire protocol carries bit vectors, not packed words; "
                "unpack with repro.hamming.packing.unpack_bits first"
            )
        return RemoteResult.from_response(
            self._request("query", bits=[int(b) for b in arr])
        )

    def insert(self, points) -> List[int]:
        """Insert points (a list/array of length-``d`` 0/1 bit rows).

        Returns the assigned global ids, in input order.  The server
        applies the insert as a barrier: queries already submitted
        complete against the old state, later ones see the new points.
        """
        arr = np.asarray(points)
        if arr.dtype == np.uint64:
            raise ValueError(
                "the wire protocol carries bit vectors, not packed words; "
                "unpack with repro.hamming.packing.unpack_bits first"
            )
        if arr.ndim == 1:
            arr = arr[None, :]
        rows = [[int(b) for b in row] for row in arr]
        response = self._request("insert", points=rows)
        return [int(i) for i in response["ids"]]

    def delete(self, ids) -> int:
        """Delete rows by global id; returns the deleted count.

        Same barrier semantics as :meth:`insert`; an invalid id raises
        :class:`ServiceError` and leaves the served index unchanged.
        Ids are validated client-side (flat, integer, no duplicates)
        before anything goes on the wire — floats are never truncated.
        """
        from repro.core.mutable import coerce_delete_ids

        response = self._request(
            "delete", ids=[int(i) for i in coerce_delete_ids(ids)]
        )
        return int(response["deleted"])

    def stats(self) -> dict:
        """The server's :class:`~repro.service.server.ServiceMetrics` snapshot."""
        return self._request("stats")["stats"]

    def info(self) -> dict:
        """What is being served: index description + batching policy."""
        response = self._request("info")
        return {"index": response["index"], "policy": response["policy"]}

    def ping(self) -> bool:
        return bool(self._request("ping").get("ok"))

    def shutdown(self) -> None:
        """Ask the server to stop (acknowledged before it goes down)."""
        self._request("shutdown")

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
