"""Synchronous client for the NDJSON serving protocol.

:class:`ServiceClient` speaks the wire protocol of
:func:`repro.service.server.serve` (one JSON object per line, matched by
``id``; shapes documented in ``docs/SERVING.md``) over a blocking
socket.  It exists for tests, examples, and shell scripting — the CI
serve smoke test is exactly::

    with ServiceClient(port=port) as client:
        result = client.query(bits)
        client.stats()
        client.shutdown()

It talks to a single ``repro serve`` process, a ``repro shard-serve``
replica, or a ``repro route`` router interchangeably — the router speaks
the same protocol (``docs/DISTRIBUTED.md``).

Responses may arrive out of order when requests are pipelined (the
server handles each line as its own task); the client parks non-matching
responses and replays them when their request asks.

Every socket operation is bounded: the constructor's ``timeout`` covers
connect **and** reads, and each verb takes an optional per-request
``timeout`` override.  A server that dies (or is suspended) between
request and response surfaces as a typed :class:`ServiceTimeoutError`
instead of a hung client — the regression tests kill a server mid-request
to pin this down.  A timed-out request is *abandoned*: its id is
remembered (in a bounded set — a server that never answers must not leak
one id per timeout forever), its late response (if one ever comes) is
discarded instead of parked, and the connection stays usable — reads are
buffered by the client itself, so they resume on the exact byte the
timeout interrupted.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "RemoteResult",
    "ServiceClient",
    "ServiceError",
    "ServiceTimeoutError",
]


class ServiceError(RuntimeError):
    """The server reported an error, or the connection broke."""


class ServiceTimeoutError(ServiceError):
    """The server did not answer (or accept a connection) in time.

    Raised instead of blocking forever when a server is killed or
    suspended between request and response.  Subclasses
    :class:`ServiceError`, so existing ``except ServiceError`` handlers
    keep working.
    """


@dataclass(frozen=True)
class RemoteResult:
    """A ``query`` response: the answer plus its probe/round ledger.

    The accounting fields mirror :class:`~repro.core.result.QueryResult`
    one-to-one, so a remote answer can be compared field-by-field with a
    local ``index.query`` call (the protocol tests do exactly that).
    ``distance`` is the true Hamming distance from the query to the
    answered point, computed server-side — routers merge shard answers
    by it (None when unanswered, or from pre-distance servers).
    """

    answer_index: Optional[int]
    probes: int
    rounds: int
    probes_per_round: List[int]
    scheme: str
    distance: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def answered(self) -> bool:
        return self.answer_index is not None

    @classmethod
    def from_response(cls, response: Dict[str, object]) -> "RemoteResult":
        distance = response.get("distance")
        return cls(
            answer_index=response.get("answer_index"),
            probes=int(response["probes"]),
            rounds=int(response["rounds"]),
            probes_per_round=[int(p) for p in response["probes_per_round"]],
            scheme=str(response.get("scheme", "")),
            distance=None if distance is None else int(distance),
            meta=dict(response.get("meta", {})),
        )


def _coerce_bit_rows(points) -> List[List[int]]:
    """Bit rows as JSON-able int lists; packed uint64 input is refused."""
    arr = np.asarray(points)
    if arr.dtype == np.uint64:
        raise ValueError(
            "the wire protocol carries bit vectors, not packed words; "
            "unpack with repro.hamming.packing.unpack_bits first"
        )
    if arr.ndim == 1:
        arr = arr[None, :]
    return [[int(b) for b in row] for row in arr]


class ServiceClient:
    """Blocking TCP client for one serving endpoint.

    Usable as a context manager; every method raises
    :class:`ServiceError` when the server answers ``ok: false`` or the
    connection drops, and :class:`ServiceTimeoutError` when it stops
    answering.  ``timeout`` bounds connect and every read; per-verb
    ``timeout`` arguments override it for one request.
    """

    #: Cap on remembered abandoned request ids.  A server that never
    #: answers (died, wedged) would otherwise grow the set by one id per
    #: timeout forever on a long-lived client.  Ids evicted here can no
    #: longer be recognized if their response *does* eventually arrive —
    #: that response is parked instead, and the stale-parked sweep in
    #: :meth:`_request` reclaims it on the next call.
    ABANDONED_LIMIT = 1024

    def __init__(self, host: str = "127.0.0.1", port: int = 7878, timeout: float = 30.0):
        self._timeout = timeout
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except socket.timeout as exc:
            raise ServiceTimeoutError(
                f"connect to {host}:{port} timed out after {timeout}s"
            ) from exc
        self._sock.settimeout(timeout)
        self._wfile = self._sock.makefile("wb")
        # Reads go through an explicit buffer instead of makefile("rb"):
        # a timeout mid-line leaves the partial bytes in _rbuf and the
        # next read resumes exactly where the stream left off, where a
        # socket file object poisons itself after any timeout ("cannot
        # read from timed out object") and would force a reconnect.
        self._rbuf = bytearray()
        self._next_id = 0
        self._parked: Dict[object, dict] = {}
        # Request ids whose caller gave up (ServiceTimeoutError): when
        # their late response eventually arrives it is dropped, not
        # parked — parking it would grow _parked without bound under
        # repeated timeouts, since nothing ever asks for those ids.
        self._abandoned: set = set()

    # -- plumbing ----------------------------------------------------------
    def _readline(self) -> bytes:
        """One complete response line (timeout-safe buffered reads)."""
        while True:
            newline = self._rbuf.find(b"\n")
            if newline >= 0:
                line = bytes(self._rbuf[: newline + 1])
                del self._rbuf[: newline + 1]
                return line
            chunk = self._sock.recv(65536)
            if not chunk:
                return b""  # EOF; a partial buffered line is torn anyway
            self._rbuf += chunk

    def _request(self, op: str, timeout: Optional[float] = None, **payload) -> dict:
        request_id = self._next_id
        self._next_id += 1
        # Ids are handed out once, in order, so a parked response for any
        # older id can never be claimed again — reclaim them now.  (Late
        # responses for ids evicted from _abandoned land in _parked; this
        # sweep is what keeps that bounded too.)
        stale = [
            rid for rid in self._parked
            if not isinstance(rid, int) or rid < request_id
        ]
        for rid in stale:
            del self._parked[rid]
        line = json.dumps({"op": op, "id": request_id, **payload})
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._wfile.write(line.encode() + b"\n")
            self._wfile.flush()
            while True:
                if request_id in self._parked:
                    response = self._parked.pop(request_id)
                else:
                    raw = self._readline()
                    if not raw:
                        raise ServiceError("server closed the connection")
                    response = json.loads(raw)
                    if response.get("id") != request_id:
                        rid = response.get("id")
                        if rid in self._abandoned:
                            self._abandoned.discard(rid)
                        else:
                            self._parked[rid] = response
                        continue
                if not response.get("ok"):
                    raise ServiceError(response.get("error", "unknown server error"))
                return response
        except socket.timeout as exc:
            # The connection stays usable (see _readline); the eventual
            # reply is matched against _abandoned and dropped.  The set
            # is capped: the oldest ids go first — they are the least
            # likely to ever be answered.
            self._abandoned.add(request_id)
            while len(self._abandoned) > self.ABANDONED_LIMIT:
                self._abandoned.discard(min(self._abandoned))
            raise ServiceTimeoutError(
                f"server did not answer {op!r} within "
                f"{timeout if timeout is not None else self._timeout}s"
            ) from exc
        finally:
            if timeout is not None:
                self._sock.settimeout(self._timeout)

    # -- verbs -------------------------------------------------------------
    def query(self, bits, timeout: Optional[float] = None) -> RemoteResult:
        """Answer one query given as a length-``d`` 0/1 bit vector."""
        arr = np.asarray(bits)
        if arr.dtype == np.uint64:
            raise ValueError(
                "the wire protocol carries bit vectors, not packed words; "
                "unpack with repro.hamming.packing.unpack_bits first"
            )
        return RemoteResult.from_response(
            self._request("query", timeout=timeout, bits=[int(b) for b in arr])
        )

    def query_batch(self, queries, timeout: Optional[float] = None) -> List[RemoteResult]:
        """Answer a batch of bit-vector queries in one request.

        The server micro-batches the whole list together; results come
        back in input order, each bitwise-identical to a lone ``query``.
        """
        rows = _coerce_bit_rows(queries)
        response = self._request("query_batch", timeout=timeout, queries=rows)
        return [RemoteResult.from_response(r) for r in response["results"]]

    def insert(self, points, timeout: Optional[float] = None) -> List[int]:
        """Insert points (a list/array of length-``d`` 0/1 bit rows).

        Returns the assigned global ids, in input order.  The server
        applies the insert as a barrier: queries already submitted
        complete against the old state, later ones see the new points.
        """
        response = self._request(
            "insert", timeout=timeout, points=_coerce_bit_rows(points)
        )
        return [int(i) for i in response["ids"]]

    def delete(self, ids, timeout: Optional[float] = None) -> int:
        """Delete rows by global id; returns the deleted count.

        Same barrier semantics as :meth:`insert`; an invalid id raises
        :class:`ServiceError` and leaves the served index unchanged.
        Ids are validated client-side (flat, integer, no duplicates)
        before anything goes on the wire — floats are never truncated.
        """
        from repro.core.mutable import coerce_delete_ids

        response = self._request(
            "delete", timeout=timeout, ids=[int(i) for i in coerce_delete_ids(ids)]
        )
        return int(response["deleted"])

    def snapshot(self, path=None, timeout: Optional[float] = None) -> dict:
        """Snapshot the served index.

        Against a single server, the save runs as a write barrier and
        records the last applied write-log sequence number in the
        manifest (``write_seq``), so a replica restarted from it
        replays only the log tail; ``path=None`` saves back to the
        directory the server loaded (``--index``).  Returns
        ``{"path": ..., "write_seq": ...}``.

        Against a router, ``path`` must stay ``None``: every live
        replica snapshots to its own snapshot directory and the durable
        write-ahead log is truncated up to the replicas' persisted
        coverage (``docs/DISTRIBUTED.md``).  Returns the router's
        checkpoint report (per-replica saves, per-shard truncation
        counts).
        """
        payload = {} if path is None else {"path": str(path)}
        response = self._request("snapshot", timeout=timeout, **payload)
        return {k: v for k, v in response.items() if k not in ("ok", "id")}

    def stats(self, timeout: Optional[float] = None) -> dict:
        """The server's metrics snapshot (service or router counters)."""
        return self._request("stats", timeout=timeout)["stats"]

    def info(self, timeout: Optional[float] = None) -> dict:
        """What is being served: index description + batching policy."""
        response = self._request("info", timeout=timeout)
        info = {"index": response["index"], "policy": response.get("policy")}
        if "replication" in response:
            info["replication"] = response["replication"]
        if "cluster" in response:
            info["cluster"] = response["cluster"]
        return info

    def ping(self, timeout: Optional[float] = None) -> bool:
        return bool(self._request("ping", timeout=timeout).get("ok"))

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Ask the server to stop (acknowledged before it goes down)."""
        self._request("shutdown", timeout=timeout)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        try:
            self._wfile.close()
        except OSError:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
