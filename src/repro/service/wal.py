"""Durable per-shard write-ahead log for the shard router.

The router's write log (``docs/DISTRIBUTED.md``) is the cluster's
source of truth: replica state is a pure function of (snapshot,
applied log prefix).  Before this module the log lived only in router
memory, so a router crash silently lost every entry past the replicas'
applied sequence.  :class:`WriteAheadLog` makes the log durable:

* One append-only JSONL **segment** per shard (``shard-NNNN.wal``
  under ``log_dir``).  The first line is a header recording the
  segment's ``base_seq`` (the replicas' agreed applied sequence when
  the segment was created or last truncated); every following line is
  one entry ``{"seq", "op", "payload", "checksum"}``.
* **fsync-on-append**: :meth:`append` writes the entry line, flushes,
  and ``os.fsync``\\ s before returning — the router only replicates a
  write after it is durable, so a crash at *any* point leaves a log
  that replays to a prefix of the acknowledged history plus at most
  the in-flight write.
* **Torn-tail tolerance**: a crash mid-append can leave a truncated
  final line — recognizable because the file then lacks a trailing
  newline (an entry is one sequential write ending in ``\\n``).  On
  open, such an unterminated tail is dropped (and counted).  A
  *newline-terminated* line that fails to parse or checksum — even the
  final one — was fully appended and later damaged: that is external
  corruption of possibly acknowledged history and raises loudly.
* **Atomic header/truncation writes**: segment creation and
  :meth:`truncate` build the new file next to the target and
  ``os.replace`` it into place (temp + fsync + rename, like the
  snapshot manifests in :mod:`repro.persistence`), so a crash never
  leaves a half-written header.

Sequence numbers are the router's per-shard write sequence (PR 6):
``base_seq`` + the entry count is the log head, and entries are
strictly consecutive.  :meth:`truncate` advances ``base_seq`` to the
minimum replica ``snapshot_seq`` once every replica has persisted a
snapshot covering the prefix — the dropped entries can never be needed
again.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, IO, List, Optional

__all__ = [
    "WalCorruptionError",
    "WalError",
    "WriteAheadLog",
    "entry_checksum",
    "read_segment",
    "segment_path",
]

WAL_FORMAT = "repro-shard-wal"
WAL_VERSION = 1


class WalError(RuntimeError):
    """Write-ahead-log failure (misuse, unreadable segment, bad state)."""


class WalCorruptionError(WalError):
    """A segment is damaged beyond the tolerated torn final line."""


def _canonical(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def entry_checksum(seq: int, op: str, payload: dict) -> str:
    """CRC32 (hex) over the canonical JSON of ``[seq, op, payload]``."""
    data = _canonical([int(seq), str(op), payload]).encode("utf-8")
    return format(zlib.crc32(data) & 0xFFFFFFFF, "08x")


def _header_checksum(shard: int, base_seq: int) -> str:
    return entry_checksum(base_seq, "__header__", {"shard": int(shard)})


def segment_path(log_dir: Path, shard: int) -> Path:
    return Path(log_dir) / f"shard-{int(shard):04d}.wal"


def _atomic_write_lines(path: Path, lines: List[str]) -> None:
    """Write ``lines`` to ``path`` atomically: temp + fsync + replace."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platforms without directory fds; the rename still happened
    try:
        os.fsync(fd)
    except OSError:
        pass  # not supported on this filesystem; best effort
    finally:
        os.close(fd)


def read_segment(path: Path) -> Dict[str, object]:
    """Parse one segment: ``{"shard", "base_seq", "entries", "torn_tail"}``.

    Entries come back as ``{"seq", "op", "payload"}`` dicts (checksums
    verified and stripped).  A torn final line — one the file does not
    newline-terminate, i.e. an append a crash cut short — is dropped
    and reported; damage anywhere else, including a terminated final
    line, raises :class:`WalCorruptionError`.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise WalError(f"cannot read WAL segment {path}: {exc}") from exc
    lines = raw.split(b"\n")
    # A well-formed file ends with a newline, so the final split piece is
    # empty; anything else is a torn tail candidate.
    complete, tail = (lines[:-1], lines[-1]) if lines else ([], b"")
    if not complete:
        raise WalCorruptionError(f"WAL segment {path} has no header line")

    def parse(line: bytes, what: str):
        try:
            record = json.loads(line)
        except (ValueError, UnicodeDecodeError) as exc:
            raise WalCorruptionError(
                f"WAL segment {path}: unparseable {what}: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise WalCorruptionError(f"WAL segment {path}: {what} is not an object")
        return record

    header = parse(complete[0], "header line")
    if header.get("wal") != WAL_FORMAT:
        raise WalCorruptionError(f"{path} is not a {WAL_FORMAT} segment: {header}")
    if header.get("version") != WAL_VERSION:
        raise WalError(
            f"WAL segment {path} has version {header.get('version')}, "
            f"this build reads version {WAL_VERSION}"
        )
    try:
        shard = int(header["shard"])
        base_seq = int(header["base_seq"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WalCorruptionError(f"WAL segment {path}: bad header fields") from exc
    if header.get("checksum") != _header_checksum(shard, base_seq):
        raise WalCorruptionError(f"WAL segment {path}: header checksum mismatch")

    entries: List[dict] = []
    torn_tail = False
    body = complete[1:]
    if tail:
        body = body + [tail]  # no trailing newline: the tail is suspect
    for i, line in enumerate(body):
        # Torn-tail tolerance applies only to the unterminated tail
        # piece: entry lines are single sequential writes ending in a
        # newline, so a crash mid-append can never persist the newline
        # without the bytes before it.  A *terminated* final line that
        # fails to parse or checksum was fully appended and then damaged
        # — possibly an acknowledged, replicated write — and silently
        # dropping it would be data loss, not crash tolerance.
        tearable = bool(tail) and i == len(body) - 1
        try:
            record = parse(line, f"entry line {i + 2}")
            seq = int(record["seq"])
            op = str(record["op"])
            payload = record["payload"]
            if not isinstance(payload, dict):
                raise WalCorruptionError(
                    f"WAL segment {path}: entry {seq} payload is not an object"
                )
            if record.get("checksum") != entry_checksum(seq, op, payload):
                raise WalCorruptionError(
                    f"WAL segment {path}: entry line {i + 2} checksum mismatch"
                )
        except (WalCorruptionError, KeyError, TypeError, ValueError):
            if tearable:
                # Torn tail: a crash mid-append left a truncated final
                # line.  Never replayed.
                torn_tail = True
                break
            raise
        expected = base_seq + len(entries) + 1
        if seq != expected:
            raise WalCorruptionError(
                f"WAL segment {path}: entry line {i + 2} has seq {seq}, "
                f"expected {expected}"
            )
        entries.append({"seq": seq, "op": op, "payload": payload})
    return {
        "shard": shard,
        "base_seq": base_seq,
        "entries": entries,
        "torn_tail": torn_tail,
    }


class _Segment:
    """One shard's open segment: parsed state + an append handle."""

    def __init__(self, path: Path, shard: int, base_seq: int, entries: List[dict]):
        self.path = path
        self.shard = shard
        self.base_seq = base_seq
        self.entries = entries
        self._handle: Optional[IO[bytes]] = None

    @property
    def head(self) -> int:
        return self.base_seq + len(self.entries)

    def _append_handle(self) -> IO[bytes]:
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class WriteAheadLog:
    """Per-shard durable write log under one directory.

    Lifecycle: construct with the directory, then either
    :meth:`open_segments` (recovery: parse what is on disk) or
    :meth:`create_segments` (fresh start: one segment per shard seeded
    at the replicas' agreed sequence).  :attr:`has_segments` says which
    applies.  All methods are synchronous (the router calls them from
    async code via plain method calls — each append is one small write
    plus an fsync, the durability cost the log exists to pay).
    """

    def __init__(self, log_dir) -> None:
        self.log_dir = Path(log_dir)
        self.log_dir.mkdir(parents=True, exist_ok=True)
        self._segments: List[_Segment] = []
        self.appends = 0
        self.truncations = 0
        self.torn_tails = 0

    # -- lifecycle ---------------------------------------------------------
    @property
    def has_segments(self) -> bool:
        return any(self.log_dir.glob("shard-*.wal"))

    @property
    def num_shards(self) -> int:
        return len(self._segments)

    def open_segments(self, num_shards: Optional[int] = None) -> "WriteAheadLog":
        """Load the existing segments (recovery path).

        Segments must cover shards ``0..S-1`` exactly; ``num_shards``
        (when given) additionally pins S — a mismatch with the shard
        map is a deployment error, not something to paper over.
        """
        paths = sorted(self.log_dir.glob("shard-*.wal"))
        if not paths:
            raise WalError(f"no WAL segments under {self.log_dir}")
        parsed = []
        for path in paths:
            segment = read_segment(path)
            if segment["torn_tail"]:
                self.torn_tails += 1
            parsed.append((path, segment))
        shards = [segment["shard"] for _, segment in parsed]
        if shards != list(range(len(parsed))):
            raise WalError(
                f"WAL segments under {self.log_dir} cover shards {shards}, "
                f"expected 0..{len(parsed) - 1}"
            )
        if num_shards is not None and len(parsed) != num_shards:
            raise WalError(
                f"WAL under {self.log_dir} has {len(parsed)} segments, "
                f"the shard map has {num_shards} shards"
            )
        self.close()
        self._segments = [
            _Segment(path, segment["shard"], segment["base_seq"], segment["entries"])
            for path, segment in parsed
        ]
        for segment in self._segments:
            if read_segment(segment.path)["torn_tail"]:
                # Physically drop the torn tail so later appends start
                # on a clean line boundary.
                self._rewrite(segment)
        return self

    def create_segments(self, bases: List[int]) -> "WriteAheadLog":
        """Create one fresh segment per shard, seeded at ``bases[si]``."""
        if self.has_segments:
            raise WalError(
                f"{self.log_dir} already holds WAL segments; pass --recover "
                "to replay them or point --log-dir at a fresh directory"
            )
        self.close()
        self._segments = []
        for shard, base_seq in enumerate(bases):
            path = segment_path(self.log_dir, shard)
            segment = _Segment(path, shard, int(base_seq), [])
            self._rewrite(segment)
            self._segments.append(segment)
        return self

    def close(self) -> None:
        for segment in self._segments:
            segment.close()

    # -- accessors ---------------------------------------------------------
    def _segment(self, shard: int) -> _Segment:
        if not 0 <= shard < len(self._segments):
            raise WalError(
                f"shard {shard} out of range; WAL has {len(self._segments)} segments"
            )
        return self._segments[shard]

    def base(self, shard: int) -> int:
        return self._segment(shard).base_seq

    def head(self, shard: int) -> int:
        return self._segment(shard).head

    def entries(self, shard: int) -> List[dict]:
        """The shard's logged entries (``{"seq", "op", "payload"}``), a copy."""
        return [dict(entry) for entry in self._segment(shard).entries]

    def describe(self) -> dict:
        """Stats block: directory, counters, per-segment positions."""
        return {
            "dir": str(self.log_dir),
            "appends": self.appends,
            "truncations": self.truncations,
            "torn_tails": self.torn_tails,
            "segments": [
                {
                    "shard": segment.shard,
                    "base_seq": segment.base_seq,
                    "head": segment.head,
                    "entries": len(segment.entries),
                }
                for segment in self._segments
            ],
        }

    # -- mutation ----------------------------------------------------------
    def append(self, shard: int, op: str, payload: dict) -> int:
        """Durably append one entry; returns its sequence number.

        The entry is on disk (written, flushed, fsync'd) before this
        returns — only then may the router offer it to replicas.
        """
        segment = self._segment(shard)
        seq = segment.head + 1
        record = {
            "seq": seq,
            "op": str(op),
            "payload": payload,
            "checksum": entry_checksum(seq, op, payload),
        }
        line = (_canonical(record) + "\n").encode("utf-8")
        handle = segment._append_handle()
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
        segment.entries.append({"seq": seq, "op": str(op), "payload": payload})
        self.appends += 1
        return seq

    def truncate(self, shard: int, upto_seq: int) -> int:
        """Drop entries with ``seq <= upto_seq``; returns the count dropped.

        Advances ``base_seq`` and atomically rewrites the segment.  A
        no-op (returns 0) when ``upto_seq`` is at or behind the current
        base; clamped to the head (the log never truncates entries that
        do not exist yet).
        """
        segment = self._segment(shard)
        upto = min(int(upto_seq), segment.head)
        if upto <= segment.base_seq:
            return 0
        dropped = upto - segment.base_seq
        segment.base_seq = upto
        segment.entries = segment.entries[dropped:]
        self._rewrite(segment)
        self.truncations += 1
        return dropped

    def _rewrite(self, segment: _Segment) -> None:
        """Atomically rewrite a segment from its in-memory state."""
        segment.close()
        header = {
            "wal": WAL_FORMAT,
            "version": WAL_VERSION,
            "shard": segment.shard,
            "base_seq": segment.base_seq,
            "checksum": _header_checksum(segment.shard, segment.base_seq),
        }
        lines = [_canonical(header)]
        for entry in segment.entries:
            record = {
                "seq": entry["seq"],
                "op": entry["op"],
                "payload": entry["payload"],
                "checksum": entry_checksum(
                    entry["seq"], entry["op"], entry["payload"]
                ),
            }
            lines.append(_canonical(record))
        _atomic_write_lines(segment.path, lines)
