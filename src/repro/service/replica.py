"""Async client for one shard-server replica, as the router sees it.

:class:`AsyncReplicaClient` is the router-side counterpart of
:class:`~repro.service.client.ServiceClient`: same NDJSON wire protocol,
but asyncio-native and built for a long-lived, failure-prone peer —
it reconnects on demand, matches pipelined responses to requests by
``id`` via a background reader task, bounds every request with a
timeout, and keeps the per-replica latency/failure counters the
router's ``stats`` verb reports.

Error taxonomy (what the router keys retry decisions on):

* :class:`ReplicaRequestError` — the replica *answered* ``ok: false``.
  The request reached a healthy server and was rejected; retrying it on
  a sibling would be rejected identically (validation is deterministic),
  so the error propagates to the caller.
* :class:`ReplicaUnavailableError` — transport failure: connect refused,
  connection dropped mid-request.  The sibling replica holds the same
  state bitwise, so the router retries there.
* :class:`ReplicaTimeoutError` — no answer in time (killed or suspended
  peer).  Subclass of unavailable: same retry-on-sibling treatment, but
  counted separately.
"""

from __future__ import annotations

import asyncio
import json
import math
from collections import deque
from typing import Deque, Dict, Optional

__all__ = [
    "AsyncReplicaClient",
    "ReplicaError",
    "ReplicaRequestError",
    "ReplicaTimeoutError",
    "ReplicaUnavailableError",
]


class ReplicaError(RuntimeError):
    """Base class for replica-communication failures."""


class ReplicaRequestError(ReplicaError):
    """The replica answered ``ok: false`` — a rejection, not an outage."""


class ReplicaUnavailableError(ReplicaError):
    """Transport failure: the replica cannot be reached or dropped us."""


class ReplicaTimeoutError(ReplicaUnavailableError):
    """The replica did not answer within the request timeout."""


def _percentile(sorted_ms, q: float) -> float:
    if not sorted_ms:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_ms)))
    return sorted_ms[min(rank, len(sorted_ms)) - 1]


class AsyncReplicaClient:
    """One router→replica NDJSON connection with reconnect and metrics.

    The client is lazy: nothing is connected until the first
    :meth:`request` (or an explicit :meth:`connect`).  After any
    transport failure the connection is torn down and the next request
    reconnects — the router decides *whether* to send that next request
    (health checks + catch-up), the client only makes it safe.

    Concurrent requests share the connection; a reader task resolves
    each response to its request by ``id``.  A timeout tears the
    connection down (the stream may hold a stale response mid-flight),
    failing other in-flight requests with
    :class:`ReplicaUnavailableError` — callers retry on a sibling.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 5.0,
        latency_window: int = 1024,
    ):
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._read_task: Optional["asyncio.Task"] = None
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._next_id = 0
        self._connect_lock = asyncio.Lock()
        # Counters surfaced through the router's stats verb.
        self.requests = 0
        self.failures = 0
        self.timeouts = 0
        self.latencies_ms: Deque[float] = deque(maxlen=int(latency_window))

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def connected(self) -> bool:
        return self._writer is not None

    # -- connection lifecycle ----------------------------------------------
    async def connect(self) -> None:
        """Open the connection if it is not already open."""
        async with self._connect_lock:
            if self._writer is not None:
                return
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    timeout=self.timeout,
                )
            except asyncio.TimeoutError as exc:
                raise ReplicaTimeoutError(
                    f"connect to replica {self.address} timed out "
                    f"after {self.timeout}s"
                ) from exc
            except OSError as exc:
                raise ReplicaUnavailableError(
                    f"cannot connect to replica {self.address}: {exc}"
                ) from exc
            self._reader = reader
            self._writer = writer
            self._read_task = asyncio.get_running_loop().create_task(
                self._read_loop(reader), name=f"replica-reader-{self.address}"
            )

    async def _read_loop(self, reader: "asyncio.StreamReader") -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except json.JSONDecodeError:
                    break  # a garbled stream cannot be re-synchronized
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.CancelledError, ValueError):
            pass
        finally:
            self._teardown(
                ReplicaUnavailableError(f"replica {self.address} closed the connection")
            )

    def _teardown(self, exc: ReplicaError) -> None:
        """Drop the connection and fail every in-flight request."""
        writer, self._writer, self._reader = self._writer, None, None
        read_task, self._read_task = self._read_task, None
        if writer is not None:
            writer.close()
        if read_task is not None and read_task is not asyncio.current_task():
            read_task.cancel()
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def close(self) -> None:
        self._teardown(ReplicaUnavailableError(f"replica client {self.address} closed"))

    # -- requests ----------------------------------------------------------
    async def request(self, op: str, timeout: Optional[float] = None, **payload) -> dict:
        """Send one request; returns the (``ok: true``) response object.

        Raises :class:`ReplicaRequestError` on an ``ok: false`` answer,
        :class:`ReplicaTimeoutError` when no answer arrives in time, and
        :class:`ReplicaUnavailableError` on any transport failure.
        """
        await self.connect()
        loop = asyncio.get_running_loop()
        request_id = self._next_id
        self._next_id += 1
        future = loop.create_future()
        self._pending[request_id] = future
        self.requests += 1
        started = loop.time()
        try:
            self._writer.write(
                (json.dumps({"op": op, "id": request_id, **payload}) + "\n").encode()
            )
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            self.failures += 1
            self._teardown(
                ReplicaUnavailableError(f"replica {self.address} dropped: {exc}")
            )
            raise ReplicaUnavailableError(
                f"replica {self.address} dropped the connection: {exc}"
            ) from exc
        try:
            response = await asyncio.wait_for(
                future, self.timeout if timeout is None else timeout
            )
        except asyncio.TimeoutError as exc:
            self._pending.pop(request_id, None)
            self.timeouts += 1
            self.failures += 1
            # A late answer can no longer be trusted to match cleanly
            # (the peer may be suspended mid-write); start clean.
            self._teardown(
                ReplicaUnavailableError(
                    f"replica {self.address} timed out; connection reset"
                )
            )
            raise ReplicaTimeoutError(
                f"replica {self.address} did not answer {op!r} within "
                f"{self.timeout if timeout is None else timeout}s"
            ) from exc
        except ReplicaUnavailableError:
            self.failures += 1
            raise
        self.latencies_ms.append((loop.time() - started) * 1000.0)
        if not response.get("ok"):
            raise ReplicaRequestError(
                str(response.get("error", "unknown replica error"))
            )
        return response

    # -- metrics -----------------------------------------------------------
    def metrics(self) -> dict:
        window = sorted(self.latencies_ms)
        return {
            "address": self.address,
            "connected": self.connected,
            "requests": self.requests,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "p50_ms": round(_percentile(window, 50), 3),
            "p99_ms": round(_percentile(window, 99), 3),
        }
