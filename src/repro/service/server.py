"""Online serving: adaptive micro-batching over the batched engine.

:class:`AsyncANNService` is the request loop the ROADMAP's "heavy
traffic" north star asks for.  Queries arrive *one at a time* (each
``await service.query(x)`` is one request); a single batcher task
coalesces whatever is waiting into micro-batches under a two-knob
policy — flush when ``max_batch`` requests are pending **or** when the
oldest pending request has waited ``max_wait_ms``, whichever comes
first — and executes each flush through the index's existing batched
path (:meth:`~repro.core.index.ANNIndex.query_batch`, i.e. the
:class:`~repro.service.engine.BatchQueryEngine`; for a
:class:`~repro.service.sharded.ShardedANNIndex` the same call fans out
across shards and merges by true distance).  Each request's future
resolves with the ordinary :class:`~repro.core.result.QueryResult`,
per-query probe/round accounting included.

Because ``query_batch`` is bitwise-equivalent to a sequential ``query``
loop *per query, independent of batch composition*, any interleaving of
requests into micro-batches returns exactly the answers a sequential
loop would — ``tests/service/test_async_service.py`` asserts this over
random arrival patterns, and ``docs/SERVING.md`` documents the
latency/throughput trade-off the two knobs span.

The service also accepts **writes**: ``await service.insert(points)``
and ``await service.delete(ids)`` enter the same FIFO queue as queries
and act as *barriers* — the batcher never mixes a write into a query
micro-batch.  Queries enqueued before a write flush (and resolve) from
the pre-write index state; the write then applies atomically between
batches; queries enqueued after it see the post-write state.  Because
the queue is drained by a single batcher task, this linearizes every
request at micro-batch granularity — concurrent readers never observe a
half-applied write or a mid-compaction structure (``docs/SERVING.md``
documents the consistency model).

The module also speaks the wire: :func:`serve` runs an asyncio TCP
server whose protocol is newline-delimited JSON (one request object per
line, one response object per line; see ``docs/SERVING.md`` for the
exact shapes), with verbs ``query``, ``insert``, ``delete``, ``stats``,
``info``, ``ping`` and ``shutdown``.  ``python -m repro serve --index
DIR`` is the CLI entry; :class:`~repro.service.client.ServiceClient` is
the matching synchronous client.
"""

from __future__ import annotations

import asyncio
import json
import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, NamedTuple, Optional

import numpy as np

from repro.hamming.kernels import active_kernel
from repro.hamming.packing import pack_bits, packed_words
from repro.persistence import (
    MMAP_FORMAT_VERSION,
    IndexPersistenceError,
    read_manifest,
)

__all__ = [
    "AsyncANNService",
    "ServiceMetrics",
    "ServiceStateError",
    "WriteSequencer",
    "describe_index",
    "serve",
]

#: Default policy knobs, shared with the CLI's ``serve`` flags.
DEFAULT_MAX_BATCH = 64
DEFAULT_MAX_WAIT_MS = 2.0


class ServiceStateError(RuntimeError):
    """A request hit the service in a lifecycle state that cannot take it
    (not started, already started, or draining for shutdown).

    Subclasses :class:`RuntimeError` so pre-existing callers that caught
    the untyped form keep working.
    """


@dataclass(frozen=True)
class ServiceMetrics:
    """A point-in-time snapshot of one service's counters.

    Latency percentiles are over a bounded window of the most recent
    requests (arrival → result, in milliseconds); the totals reconcile
    exactly with the per-flush :class:`~repro.service.engine.BatchStats`
    — ``total_probes``/``total_rounds``/``prefetched_cells`` are sums of
    the per-flush stats, ``requests`` is the sum of flush batch sizes —
    which is what ``tests/service/test_async_service.py`` checks.
    """

    requests: int
    in_flight: int
    batches: int
    writes: int
    inserts: int
    deletes: int
    mean_batch: float
    max_observed_batch: int
    qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    probes_per_query: float
    total_probes: int
    total_rounds: int
    total_sweeps: int
    prefetched_cells: int
    uptime_s: float
    max_batch: int
    max_wait_ms: float

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "in_flight": self.in_flight,
            "batches": self.batches,
            "writes": self.writes,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "mean_batch": round(self.mean_batch, 3),
            "max_observed_batch": self.max_observed_batch,
            "qps": round(self.qps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "probes_per_query": round(self.probes_per_query, 2),
            "total_probes": self.total_probes,
            "total_rounds": self.total_rounds,
            "total_sweeps": self.total_sweeps,
            "prefetched_cells": self.prefetched_cells,
            "uptime_s": round(self.uptime_s, 3),
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
        }


def _percentile(sorted_ms: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_ms:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_ms)))
    return sorted_ms[min(rank, len(sorted_ms)) - 1]


class _PendingQuery(NamedTuple):
    row: np.ndarray
    future: "asyncio.Future"
    arrival: float


class _PendingWrite(NamedTuple):
    """A queued mutation: a barrier in the request FIFO."""

    op: str  # "insert" | "delete" | "call"
    payload: object  # packed (m, W) rows, a list of global ids, or a callable
    future: "asyncio.Future"
    arrival: float


def describe_index(index) -> Dict[str, object]:
    """JSON-able description of a served index (the ``info`` verb)."""
    scheme = getattr(index, "scheme", None)
    if scheme is not None:
        name = scheme.scheme_name
        shards = 1
        generations = [index.generation] if hasattr(index, "generation") else []
    else:  # ShardedANNIndex: per-shard schemes behind one facade
        shards = index.num_shards
        name = index.scheme_label  # same label merged QueryResults carry
        generations = list(getattr(index, "generations", []))
    spec = getattr(index, "spec", None)
    out = {
        "n": len(index),
        "d": index.d,
        "scheme": name,
        "shards": shards,
        "generations": generations,
        "id_space": int(getattr(index, "id_space", len(index))),
        "spec": None if spec is None else spec.to_dict(),
        "load_mode": getattr(index, "load_mode", "heap"),
        # Provenance: which popcount/distance backend answered (the
        # kernel seam, repro.hamming.kernels) — bitwise-equal across
        # backends, but perf numbers are only comparable like for like.
        "kernel": active_kernel(),
    }
    residency = _residency_info(index)
    if residency is not None:
        out["memory_budget"] = residency["memory_budget"]
    return out


def _residency_info(index) -> Optional[Dict[str, object]]:
    """The residency layer's counters, when the index has one.

    Single indexes have no residency manager (nothing to evict below one
    index), so this is None for them and the stats/info verbs omit the
    block instead of faking zeros.
    """
    stats_fn = getattr(index, "residency_stats", None)
    if stats_fn is None:
        return None
    return stats_fn().to_dict()


class AsyncANNService:
    """In-process asyncio serving facade over one index.

    Parameters
    ----------
    index : an :class:`~repro.core.index.ANNIndex` or
        :class:`~repro.service.sharded.ShardedANNIndex` (anything with
        ``query_batch`` + ``last_batch_stats`` + ``d``)
    max_batch : flush as soon as this many requests are pending (≥ 1;
        1 disables coalescing — the batch-size-1 baseline E17 measures)
    max_wait_ms : flush when the oldest pending request has waited this
        long, even if the batch is not full (0 flushes whatever has
        accumulated by the time the batcher runs — concurrent arrivals
        still coalesce)
    prefetch : forwarded to ``query_batch``
    latency_window : how many recent request latencies the percentile
        snapshot keeps

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly::

        async with AsyncANNService(index, max_batch=64) as service:
            results = await asyncio.gather(*(service.query(q) for q in qs))
            service.metrics().as_dict()

    Results are bitwise-identical to sequential ``index.query`` calls
    regardless of how requests were interleaved into micro-batches.
    """

    def __init__(
        self,
        index,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        prefetch: bool = True,
        latency_window: int = 8192,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.index = index
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.prefetch = bool(prefetch)
        self._word_count = packed_words(index.d)
        self._queue: Deque[_PendingQuery] = deque()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._batcher: Optional["asyncio.Task"] = None
        self._closing = False
        self._started_at = 0.0
        # Counters (reconciled against per-flush BatchStats by tests).
        self._requests = 0
        self._batches = 0
        self._inserts = 0
        self._deletes = 0
        self._max_observed_batch = 0
        self._total_probes = 0
        self._total_rounds = 0
        self._total_sweeps = 0
        self._prefetched_cells = 0
        self._latencies: Deque[float] = deque(maxlen=int(latency_window))

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "AsyncANNService":
        """Start the batcher task on the running event loop."""
        if self._batcher is not None:
            raise ServiceStateError("service already started")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._closing = False
        self._started_at = self._loop.time()
        self._batcher = self._loop.create_task(self._run(), name="ann-micro-batcher")
        return self

    async def stop(self) -> None:
        """Drain pending requests, then stop the batcher."""
        if self._batcher is None:
            return
        self._closing = True
        self._wake.set()
        await self._batcher
        self._batcher = None

    async def __aenter__(self) -> "AsyncANNService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the request surface -----------------------------------------------
    def _check_accepting(self) -> None:
        if self._batcher is None:
            raise ServiceStateError("service not started (use 'async with' or start())")
        if self._closing:
            raise ServiceStateError("service is stopping; no new requests accepted")

    async def query(self, x) -> object:
        """Submit one query; resolves with its :class:`QueryResult`.

        Accepts a length-``d`` 0/1 bit vector or a packed uint64 row.
        Raises ``ValueError`` immediately (before enqueueing) when the
        query does not match the index dimension, so one malformed
        request never poisons a batch.
        """
        self._check_accepting()
        row = self._pack_query(x)
        future = self._loop.create_future()
        self._queue.append(_PendingQuery(row, future, self._loop.time()))
        self._wake.set()
        return await future

    def submit_insert(self, points) -> "asyncio.Future":
        """Enqueue an insert *synchronously*; returns its future.

        The split from :meth:`insert` matters for sequenced replication:
        a caller that validates a write-log sequence number and enqueues
        in the same event-loop step guarantees queue order matches
        sequence order — an ``await`` between the two would let another
        task's write interleave.  Shape/dimension validation happens
        here, before enqueueing.
        """
        self._check_accepting()
        rows = self.index._coerce_rows(points)
        future = self._loop.create_future()
        self._queue.append(_PendingWrite("insert", rows, future, self._loop.time()))
        self._wake.set()
        return future

    async def insert(self, points) -> List[int]:
        """Insert points; resolves with their assigned global ids.

        The insert is a barrier in the request FIFO: every query
        submitted before it completes against the pre-insert index,
        every query submitted after it sees the new points (exactly
        searchable from the memtable).
        """
        return await self.submit_insert(points)

    def submit_delete(self, ids) -> "asyncio.Future":
        """Enqueue a delete synchronously; returns its future.

        Shape/integrality validation happens here, before enqueueing —
        float ids are rejected, never truncated (same ordering rationale
        as :meth:`submit_insert`).
        """
        self._check_accepting()
        from repro.core.mutable import coerce_delete_ids

        id_list = [int(i) for i in coerce_delete_ids(ids)]
        future = self._loop.create_future()
        self._queue.append(_PendingWrite("delete", id_list, future, self._loop.time()))
        self._wake.set()
        return future

    async def delete(self, ids) -> int:
        """Delete rows by global id; resolves with the deleted count.

        Same barrier semantics as :meth:`insert`; an invalid id rejects
        the whole call when it applies (atomically, between batches) and
        leaves the index unchanged.
        """
        return await self.submit_delete(ids)

    def submit_call(self, fn, count_as: Optional[str] = None) -> "asyncio.Future":
        """Enqueue ``fn`` to run as a write barrier; returns its future.

        ``fn`` executes between micro-batches with the same fence as
        :meth:`insert`/:meth:`delete` — every earlier query resolved
        against the pre-call state, no later query runs until it returns.
        The shard server uses this for sequenced replicated writes (apply
        + advance the acked sequence number atomically) and consistent
        snapshots.  ``count_as`` ("insert"/"delete") attributes the call
        to the write counters; None leaves the metrics untouched.
        """
        self._check_accepting()
        if not callable(fn):
            raise TypeError(f"submit_call needs a callable, got {type(fn).__name__}")
        future = self._loop.create_future()
        item = _PendingWrite("call", (fn, count_as), future, self._loop.time())
        self._queue.append(item)
        self._wake.set()
        return future

    async def barrier(self, fn):
        """Run ``fn`` between micro-batches; resolves with its result."""
        return await self.submit_call(fn)

    def _pack_query(self, x) -> np.ndarray:
        arr = np.asarray(x)
        if arr.ndim != 1:
            raise ValueError(
                f"service queries are one at a time; got shape {arr.shape}"
            )
        if arr.dtype == np.uint64:
            if arr.shape[0] != self._word_count:
                raise ValueError(
                    f"packed query has {arr.shape[0]} words, index needs "
                    f"{self._word_count}"
                )
            return arr
        if arr.shape[0] != self.index.d:
            raise ValueError(
                f"query has {arr.shape[0]} bits, index dimension is {self.index.d}"
            )
        return pack_bits(arr.astype(np.uint8), self.index.d)

    # -- metrics -----------------------------------------------------------
    def metrics(self) -> ServiceMetrics:
        """Snapshot the counters (the ``stats`` verb)."""
        now = self._loop.time() if self._loop is not None else 0.0
        uptime = max(now - self._started_at, 0.0) if self._started_at else 0.0
        window = sorted(ms * 1000.0 for ms in self._latencies)
        return ServiceMetrics(
            requests=self._requests,
            # Queries only: pending writes are tracked by the writes/
            # inserts/deletes counters, so query totals keep reconciling.
            in_flight=sum(
                1 for item in self._queue if isinstance(item, _PendingQuery)
            ),
            batches=self._batches,
            writes=self._inserts + self._deletes,
            inserts=self._inserts,
            deletes=self._deletes,
            mean_batch=(self._requests / self._batches) if self._batches else 0.0,
            max_observed_batch=self._max_observed_batch,
            qps=(self._requests / uptime) if uptime > 0 else 0.0,
            p50_ms=_percentile(window, 50),
            p95_ms=_percentile(window, 95),
            p99_ms=_percentile(window, 99),
            probes_per_query=(
                self._total_probes / self._requests if self._requests else 0.0
            ),
            total_probes=self._total_probes,
            total_rounds=self._total_rounds,
            total_sweeps=self._total_sweeps,
            prefetched_cells=self._prefetched_cells,
            uptime_s=uptime,
            max_batch=self.max_batch,
            max_wait_ms=self.max_wait_ms,
        )

    # -- the batcher -------------------------------------------------------
    def _leading_run(self) -> tuple:
        """``(count, barrier)``: queries at the queue's front before the
        first pending write (count capped at ``max_batch``), and whether
        such a write exists.  A barrier means the front run can never
        grow — later arrivals queue behind the write — so it flushes
        immediately instead of waiting out the deadline."""
        count = 0
        for item in self._queue:
            if isinstance(item, _PendingWrite):
                return count, True
            count += 1
            if count >= self.max_batch:
                break
        return count, False

    async def _run(self) -> None:
        loop = self._loop
        max_wait = self.max_wait_ms / 1000.0
        while True:
            if not self._queue:
                if self._closing:
                    return
                self._wake.clear()
                # A submit between the emptiness check and clear() would
                # be lost to a bare wait — re-check before sleeping.
                if self._queue or self._closing:
                    continue
                await self._wake.wait()
                continue
            if isinstance(self._queue[0], _PendingWrite):
                self._apply_write()
                continue
            deadline = self._queue[0].arrival + max_wait
            while not self._closing:
                run, barrier = self._leading_run()
                if run >= self.max_batch or barrier:
                    break
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                self._wake.clear()
                run, barrier = self._leading_run()
                if run >= self.max_batch or barrier or self._closing:
                    continue
                try:
                    await asyncio.wait_for(self._wake.wait(), remaining)
                except asyncio.TimeoutError:
                    break
            self._flush()

    def _apply_write(self) -> None:
        """Apply the write at the queue's head, between micro-batches.

        Runs synchronously on the event loop — by the time it executes,
        every earlier-submitted query has already flushed against the
        pre-write state, and no query can run until it returns.  That is
        the barrier fence.  Like :meth:`_flush` (which runs whole query
        batches on the loop), this trades loop stalls for strict
        linearizability; a write that trips the amortized compaction
        stalls for the rebuild, so latency-sensitive deployments should
        raise ``compact_threshold`` and compact off-peak (e.g. via
        ``repro mutate --compact``).
        """
        item = self._queue.popleft()
        try:
            if item.op == "insert":
                value: object = self.index.insert(item.payload)
                self._inserts += 1
            elif item.op == "delete":
                value = self.index.delete(item.payload)
                self._deletes += 1
            else:  # "call": a barrier callable (sequenced write / snapshot)
                fn, count_as = item.payload
                value = fn()
                if count_as == "insert":
                    self._inserts += 1
                elif count_as == "delete":
                    self._deletes += 1
        except Exception as exc:
            if not item.future.done():
                item.future.set_exception(exc)
            return
        if not item.future.done():
            item.future.set_result(value)

    def _flush(self) -> None:
        """Execute one micro-batch of queries and resolve its futures."""
        take = min(self._leading_run()[0], self.max_batch)
        if take == 0:
            return
        batch = [self._queue.popleft() for _ in range(take)]
        rows = np.stack([item.row for item in batch])
        try:
            results = self.index.query_batch(rows, prefetch=self.prefetch)
        except Exception as exc:  # systemic: fail every request in the flush
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        stats = self.index.last_batch_stats
        now = self._loop.time()
        for item, result in zip(batch, results):
            self._latencies.append(now - item.arrival)
            if not item.future.done():
                item.future.set_result(result)
        self._requests += take
        self._batches += 1
        self._max_observed_batch = max(self._max_observed_batch, take)
        if stats is not None:
            self._total_probes += stats.total_probes
            self._total_rounds += stats.total_rounds
            self._total_sweeps += stats.sweeps
            self._prefetched_cells += stats.prefetched_cells


# -- the wire protocol -----------------------------------------------------
#: StreamReader line limit for the NDJSON protocol.  Large enough for a
#: query_batch of thousands of bit rows; a line beyond it is answered
#: with an error response and the connection is closed (the stream can
#: no longer be re-synchronized mid-line).
WIRE_LINE_LIMIT = 2 ** 24


class WriteSequencer:
    """Orders replicated writes on one shard server.

    The router stamps every insert/delete with a per-shard, monotonically
    increasing write-log sequence number (``docs/DISTRIBUTED.md``).  The
    sequencer admits exactly the next number, acknowledges anything
    already admitted as an idempotent duplicate (a suspended replica can
    receive the same write from its stale TCP buffer *and* a catch-up
    replay), and refuses gaps loudly — applying ``seq`` without
    ``seq - 1`` would silently diverge from every sibling replica.

    ``accepted`` advances synchronously at admission (it gates queue
    order); ``applied`` advances inside the write barrier itself, so a
    ``snapshot`` barrier always records the exact sequence number the
    saved state reflects.
    """

    def __init__(self, initial: int = 0):
        self.accepted = int(initial)
        self.applied = int(initial)
        #: Last applied sequence covered by a *persisted* snapshot — the
        #: loaded snapshot's write_seq at startup, advanced by the
        #: ``snapshot`` verb.  The router truncates its durable WAL up
        #: to the minimum of these across a shard's replicas.
        self.snapshot_seq = int(initial)
        self._acks: Dict[int, dict] = {}
        self._ack_window = 32

    def admit(self, seq) -> bool:
        """True when ``seq`` must be applied, False for a duplicate.

        Raises ``ValueError`` on a sequence gap.
        """
        seq = int(seq)
        if seq <= self.accepted:
            return False
        if seq != self.accepted + 1:
            raise ValueError(
                f"write sequence gap: expected {self.accepted + 1}, got {seq} "
                "(replica out of sync; needs catch-up from the router log)"
            )
        self.accepted = seq
        return True

    def record(self, seq: int, response: dict) -> None:
        """Remember an ack so an exact duplicate can replay it."""
        self._acks[int(seq)] = response
        while len(self._acks) > self._ack_window:
            del self._acks[min(self._acks)]

    def duplicate_ack(self, seq: int) -> dict:
        """The response for an already-admitted sequence number."""
        recorded = self._acks.get(int(seq))
        if recorded is not None:
            return {**recorded, "duplicate": True}
        return {
            "ok": True,
            "duplicate": True,
            "seq": int(seq),
            "applied_seq": self.applied,
        }


class _ServerState(NamedTuple):
    """Everything one serving process shares across connections."""

    service: AsyncANNService
    sequencer: WriteSequencer
    shard_id: Optional[int]
    snapshot_dir: Optional[str] = None


def _jsonable(value):
    """Best-effort conversion of result metadata to JSON-able values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def _result_response(result, distance: Optional[int] = None) -> Dict[str, object]:
    return {
        "ok": True,
        "answered": result.answer_index is not None,
        "answer_index": _jsonable(result.answer_index),
        "probes": result.probes,
        "rounds": result.rounds,
        "probes_per_round": list(result.probes_per_round),
        "scheme": result.scheme,
        "distance": None if distance is None else int(distance),
        "meta": _jsonable(result.meta),
    }


def _packed_query(service: AsyncANNService, bits) -> np.ndarray:
    return service._pack_query(np.asarray(bits, dtype=np.uint8))


def _query_distance(row: np.ndarray, result) -> Optional[int]:
    """True Hamming distance from the query to the answered point — what
    a router needs to merge shard answers exactly like
    :meth:`~repro.service.sharded.ShardedANNIndex.query_batch` does."""
    if result.answer_packed is None:
        return None
    from repro.hamming.distance import hamming_distance

    return int(hamming_distance(row, result.answer_packed))


def _write_ack(state: _ServerState, seq: Optional[int], **fields) -> Dict[str, object]:
    index = state.service.index
    ack: Dict[str, object] = {
        "ok": True,
        "live": len(index),
        "id_space": int(getattr(index, "id_space", len(index))),
        **fields,
    }
    if seq is not None:
        ack["seq"] = int(seq)
        ack["applied_seq"] = state.sequencer.applied
    return ack


async def _sequenced_write(
    state: _ServerState, seq, apply_fn, count_as: str
) -> Dict[str, object]:
    """Run one replicated write through the sequencer + write barrier.

    ``apply_fn`` mutates the index and returns the ack payload fields;
    it runs inside the service's barrier together with the ``applied``
    advance, so snapshots taken at any barrier see a consistent
    (state, sequence) pair.
    """
    gate = state.sequencer
    seq_int = int(seq)
    if not gate.admit(seq_int):  # raises on gaps
        return gate.duplicate_ack(seq_int)

    def apply():
        fields = apply_fn()
        gate.applied = seq_int
        return fields

    fields = await state.service.submit_call(apply, count_as=count_as)
    ack = _write_ack(state, seq_int, **fields)
    gate.record(seq_int, ack)
    return ack


async def _handle_request(
    state: _ServerState,
    shutdown: "asyncio.Event",
    line: bytes,
    writer: "asyncio.StreamWriter",
    write_lock: "asyncio.Lock",
) -> None:
    service = state.service
    request_id = None
    try:
        request = json.loads(line)
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        request_id = request.get("id")
        op = request.get("op")
        if op == "query":
            bits = request.get("bits")
            if bits is None:
                raise ValueError("'query' needs a 'bits' array of 0/1 values")
            row = _packed_query(service, bits)
            result = await service.query(row)
            response = _result_response(result, distance=_query_distance(row, result))
        elif op == "query_batch":
            queries = request.get("queries")
            if not isinstance(queries, list) or not queries:
                raise ValueError(
                    "'query_batch' needs a non-empty 'queries' list of bit rows"
                )
            # Validate every row before submitting any, so one malformed
            # row fails the whole batch without half-submitting it (the
            # same atomicity ANNIndex.query_batch has).
            rows = [_packed_query(service, bits) for bits in queries]
            results = await asyncio.gather(*(service.query(row) for row in rows))
            response = {
                "ok": True,
                "results": [
                    _result_response(result, distance=_query_distance(row, result))
                    for row, result in zip(rows, results)
                ],
            }
        elif op == "insert":
            points = request.get("points")
            if not points:
                raise ValueError("'insert' needs a non-empty 'points' list of bit rows")
            arr = np.asarray(points, dtype=np.uint8)
            seq = request.get("seq")
            if seq is None:
                ids = await service.insert(arr)
                response = _write_ack(state, None, ids=[int(i) for i in ids])
            else:
                rows = service.index._coerce_rows(arr)  # validate pre-admission

                def apply_insert(rows=rows):
                    return {"ids": [int(i) for i in service.index.insert(rows)]}

                response = await _sequenced_write(state, seq, apply_insert, "insert")
        elif op == "delete":
            ids = request.get("ids")
            if not ids:
                raise ValueError("'delete' needs a non-empty 'ids' list")
            # Validated up front (flat, integer, no duplicates) — a JSON
            # float id is rejected here, never truncated.
            from repro.core.mutable import coerce_delete_ids

            id_list = [int(i) for i in coerce_delete_ids(ids)]
            seq = request.get("seq")
            if seq is None:
                deleted = await service.delete(id_list)
                response = _write_ack(state, None, deleted=int(deleted))
            else:

                def apply_delete(id_list=id_list):
                    return {"deleted": int(service.index.delete(id_list))}

                response = await _sequenced_write(state, seq, apply_delete, "delete")
        elif op == "check_ids":
            ids = request.get("ids")
            if not isinstance(ids, list) or not ids:
                raise ValueError("'check_ids' needs a non-empty 'ids' list")
            index = service.index
            id_space = int(getattr(index, "id_space", len(index)))
            response = {
                "ok": True,
                "live": [
                    bool(0 <= int(i) < id_space and index.is_live(int(i)))
                    for i in ids
                ],
                "id_space": id_space,
            }
        elif op == "snapshot":
            path = request.get("path")
            if path is None:
                path = state.snapshot_dir
                if path is None:
                    raise ValueError(
                        "'snapshot' needs a 'path' directory string (this "
                        "server was started without a snapshot directory "
                        "to save back to)"
                    )
            if not path or not isinstance(path, str):
                raise ValueError("'snapshot' needs a 'path' directory string")
            in_place = path == state.snapshot_dir
            gate = state.sequencer

            def snap():
                # Runs at a write barrier: gate.applied is exactly the
                # last write folded into the saved state.  An in-place
                # save keeps the source snapshot's format (a v3/mmap
                # snapshot must stay mappable for the next restart) and
                # only advances snapshot_seq once the save returned —
                # i.e. once the manifest rename hit the disk.
                format_version = None
                if in_place:
                    try:
                        manifest = read_manifest(path)
                        if int(manifest.get("format_version", 0)) >= 3:
                            format_version = int(manifest["format_version"])
                    except IndexPersistenceError:
                        # No prior checkpoint here (e.g. a replica's own
                        # fresh snapshot directory).  An mmap-loaded
                        # index must checkpoint as v3 anyway — a restart
                        # reloads this directory with the same
                        # --load-mode, and v2 cannot be mapped.
                        if getattr(service.index, "load_mode", "heap") == "mmap":
                            format_version = MMAP_FORMAT_VERSION
                saved = service.index.save(
                    path, write_seq=gate.applied, format_version=format_version
                )
                if in_place:
                    # Only an in-place save moves the replica's durable
                    # coverage: a restart reloads snapshot_dir, not an
                    # export to some other path.
                    gate.snapshot_seq = gate.applied
                return saved, gate.applied

            saved, write_seq = await service.barrier(snap)
            response = {"ok": True, "path": str(saved), "write_seq": int(write_seq)}
        elif op == "stats":
            # The kernel rides inside the stats payload: ServiceClient
            # unwraps response["stats"], so provenance outside it would
            # be invisible to every caller.
            response = {
                "ok": True,
                "stats": {
                    **service.metrics().as_dict(),
                    "kernel": active_kernel(),
                },
                "replication": _replication_info(state),
            }
            residency = _residency_info(service.index)
            if residency is not None:
                response["residency"] = residency
        elif op == "info":
            response = {
                "ok": True,
                "index": describe_index(service.index),
                "policy": {
                    "max_batch": service.max_batch,
                    "max_wait_ms": service.max_wait_ms,
                },
                "replication": _replication_info(state),
            }
            residency = _residency_info(service.index)
            if residency is not None:
                response["residency"] = residency
        elif op == "ping":
            response = {"ok": True, "op": "ping"}
        elif op == "shutdown":
            response = {"ok": True, "stopping": True}
        else:
            raise ValueError(f"unknown op {op!r}")
    except Exception as exc:
        response = {"ok": False, "error": str(exc)}
        op = None
    response["id"] = request_id
    payload = (json.dumps(response, sort_keys=True) + "\n").encode()
    try:
        async with write_lock:
            writer.write(payload)
            try:
                await writer.drain()
            except ConnectionError:
                pass  # client went away; the request still took effect
    finally:
        # A shutdown must stop the server even when the ack could not be
        # delivered (client closed without reading the reply).
        if op == "shutdown":
            shutdown.set()


def _replication_info(state: _ServerState) -> Dict[str, object]:
    return {
        "shard": state.shard_id,
        "last_seq": state.sequencer.applied,
        "accepted_seq": state.sequencer.accepted,
        "snapshot_seq": state.sequencer.snapshot_seq,
    }


async def _connection_loop(
    handler,
    reader: "asyncio.StreamReader",
    writer: "asyncio.StreamWriter",
) -> None:
    """One NDJSON connection: each line is handled as its own task
    (``handler(line, writer, write_lock)``), so a client pipelining
    requests gets them processed concurrently; responses carry the
    request's ``id`` and may arrive out of order.  Shared by the shard
    server here and the router in :mod:`repro.service.cluster`."""
    write_lock = asyncio.Lock()
    tasks = set()
    try:
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                # A line beyond WIRE_LINE_LIMIT: the stream cannot be
                # re-synchronized mid-line, so answer with an error and
                # drop only this connection — the service (and every
                # other connection) keeps running.
                async with write_lock:
                    writer.write(
                        (
                            json.dumps(
                                {
                                    "ok": False,
                                    "error": "request line exceeds "
                                    f"{WIRE_LINE_LIMIT} bytes",
                                    "id": None,
                                },
                                sort_keys=True,
                            )
                            + "\n"
                        ).encode()
                    )
                    try:
                        await writer.drain()
                    except ConnectionError:
                        pass
                break
            if not line:
                break
            if not line.strip():
                continue
            task = asyncio.create_task(handler(line, writer, write_lock))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
    except asyncio.CancelledError:
        # Process shutting down with this connection still open; finish
        # cleanly — 3.11's streams done-callback calls task.exception()
        # without a cancelled() guard and would log a spurious traceback.
        pass
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def serve(
    index,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
    ready_cb: Optional[Callable[[str, int], None]] = None,
    shard_id: Optional[int] = None,
    initial_seq: int = 0,
    snapshot_dir: Optional[str] = None,
) -> None:
    """Serve ``index`` over TCP until a client sends ``shutdown``.

    ``port=0`` binds an ephemeral port; ``ready_cb(host, port)`` fires
    with the bound address once the server is listening (the CLI uses it
    to print the address and write ``--ready-file``).

    ``shard_id``/``initial_seq`` turn the process into a **shard server**
    (``python -m repro shard-serve``): ``info``/``stats`` report the
    shard id and the last applied write-log sequence number, and
    sequenced ``insert``/``delete`` requests are gated through a
    :class:`WriteSequencer` starting at ``initial_seq`` (the snapshot's
    recorded ``write_seq``).  A plain ``repro serve`` accepts sequenced
    writes too — the gate simply starts at 0.

    ``snapshot_dir`` is where a bare ``snapshot`` request — no ``path``
    — saves to, letting the router checkpoint every replica before
    truncating its WAL.  The CLI passes ``--snapshot-dir`` when given
    (each replica gets its *own* checkpoint directory, so siblings
    sharing a loaded snapshot never rewrite each other's files) and
    falls back to ``--index``.
    """
    service = AsyncANNService(index, max_batch=max_batch, max_wait_ms=max_wait_ms)
    await service.start()
    state = _ServerState(service, WriteSequencer(initial_seq), shard_id, snapshot_dir)
    shutdown = asyncio.Event()
    server = None
    def handler(line, writer, write_lock):
        return _handle_request(state, shutdown, line, writer, write_lock)

    try:
        server = await asyncio.start_server(
            lambda r, w: _connection_loop(handler, r, w),
            host,
            port,
            limit=WIRE_LINE_LIMIT,
        )
        bound = server.sockets[0].getsockname()
        if ready_cb is not None:
            ready_cb(bound[0], bound[1])
        await shutdown.wait()
    finally:
        # The finally covers start_server failures too (port in use must
        # not leak a running batcher task).
        if server is not None:
            server.close()
            await server.wait_closed()
        await service.stop()
