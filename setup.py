from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).parent / "README.md"

setup(
    name="repro-limited-adaptivity-ann",
    version="1.5.0",
    description=(
        "Reproduction of Liu-Pan-Yin (SPAA 2016): randomized approximate "
        "nearest neighbor search with limited adaptivity, with an exact "
        "cell-probe simulator and a batched query engine"
    ),
    long_description=README.read_text() if README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=2.0",  # np.bitwise_count is the popcount substrate
    ],
    extras_require={
        "dev": [
            "pytest>=7",
            "pytest-benchmark",
            "pytest-cov",
            "hypothesis",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-ann=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
    ],
)
