"""Machine-readable benchmark artifacts (``results/BENCH_*.json``).

The markdown tables (``report_table``) are for humans transcribing
EXPERIMENTS.md; these JSON artifacts are the perf *trajectory* — CI
uploads them on every run and prints an informational diff against the
previous run's numbers, so serving-latency or recovery-time regressions
are visible in the log long before anyone reruns a benchmark by hand.

Schema (one file per experiment)::

    {
      "bench": "e18_cluster",
      "repro_version": "1.7.0",
      "env": {"python": "...", "numpy": "...", "cpu_count": 8},
      "load_mode": "heap",                           # how indexes were resident
      "metrics": {"serve_p50_ms": 1.9,
                  "peak_rss_mb": 312.4, ...}         # flat name -> number
    }

Every artifact automatically records the process's peak RSS
(``resource.getrusage``) as the ``peak_rss_mb`` metric and the index
residency mode as ``load_mode`` — so the E16–E19 memory claims ride the
same diffed trajectory as the timing numbers.

Only ``metrics`` is diffed; everything else is provenance (including
``env.kernel``, the active popcount/distance backend).  Run
``python benchmarks/artifacts.py diff OLD NEW`` for the comparison CI
prints; add ``--gate-qps-drop 30`` to turn a >30% drop in any ``qps``
metric into exit 1 — but only on like-for-like provenance (same env,
kernel, and load_mode); any other diff stays informational.
"""

from __future__ import annotations

import json
import os
import platform
import sys

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None
from pathlib import Path
from typing import Dict, Optional

__all__ = [
    "artifact_path",
    "diff_artifacts",
    "format_diff",
    "gate_regressions",
    "peak_rss_mb",
    "write_artifact",
]

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def artifact_path(bench: str) -> Path:
    """Where ``write_artifact`` puts this experiment's JSON."""
    return RESULTS_DIR / f"BENCH_{bench}.json"


def _env() -> dict:
    import numpy

    from repro.hamming.kernels import active_kernel

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": cores,
        # The active popcount/distance backend: q/s numbers are only
        # comparable between runs that used the same kernel, so the
        # regression gate below treats it as provenance.
        "kernel": active_kernel(),
    }


def peak_rss_mb() -> Optional[float]:
    """This process's lifetime peak resident set size, in MiB.

    ``ru_maxrss`` is kilobytes on Linux (bytes on macOS — normalized
    here); None where the ``resource`` module is unavailable.  Note the
    *lifetime* peak: a benchmark that must show a low-memory
    configuration stays low has to measure in a fresh subprocess (see
    ``bench_e19_out_of_core.py``).
    """
    if resource is None:  # pragma: no cover - non-POSIX
        return None
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return maxrss / divisor


def write_artifact(
    bench: str,
    metrics: Dict[str, float],
    extras: Optional[dict] = None,
    load_mode: str = "heap",
) -> Path:
    """Write ``results/BENCH_<bench>.json``; returns the path.

    ``metrics`` must be a flat name→number mapping (that is what the CI
    diff compares run over run); anything non-numeric belongs in
    ``extras``.  The process's peak RSS is recorded automatically as the
    ``peak_rss_mb`` metric (pass an explicit value to override — e.g. a
    subprocess measurement), and ``load_mode`` names how the benchmark's
    indexes were resident.
    """
    for key, value in metrics.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeError(f"metric {key!r} is not a number: {value!r}")
    metrics = dict(metrics)
    if "peak_rss_mb" not in metrics:
        rss = peak_rss_mb()
        if rss is not None:
            metrics["peak_rss_mb"] = round(rss, 2)
    import repro

    payload = {
        "bench": bench,
        "repro_version": repro.__version__,
        "env": _env(),
        "load_mode": load_mode,
        "metrics": {k: metrics[k] for k in sorted(metrics)},
    }
    if extras:
        payload["extras"] = extras
    path = artifact_path(bench)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def diff_artifacts(old: dict, new: dict) -> list:
    """Rows of (metric, old, new, delta_pct) — ``None`` where absent."""
    old_metrics = old.get("metrics", {})
    new_metrics = new.get("metrics", {})
    rows = []
    for name in sorted(set(old_metrics) | set(new_metrics)):
        before = old_metrics.get(name)
        after = new_metrics.get(name)
        if before is not None and after is not None and before != 0:
            pct = 100.0 * (after - before) / abs(before)
        else:
            pct = None
        rows.append((name, before, after, pct))
    return rows


def format_diff(old: dict, new: dict) -> str:
    def fmt(value):
        return "—" if value is None else f"{value:.4g}"

    lines = [
        f"BENCH_{new.get('bench', '?')}: "
        f"{old.get('repro_version', '?')} -> {new.get('repro_version', '?')}",
        f"{'metric':<28} {'old':>12} {'new':>12} {'Δ%':>8}",
    ]
    for name, before, after, pct in diff_artifacts(old, new):
        pct_s = "—" if pct is None else f"{pct:+.1f}%"
        lines.append(f"{name:<28} {fmt(before):>12} {fmt(after):>12} {pct_s:>8}")
    return "\n".join(lines)


def gate_regressions(old: dict, new: dict, max_drop_pct: float) -> list:
    """Throughput regressions worth failing CI over, as message strings.

    Only ``qps`` metrics gate (latency on shared runners is too noisy
    even for a soft gate), and only when the runs are *like for like*:
    identical ``env`` provenance (python/numpy/cpu_count/kernel) and
    ``load_mode``.  A runner change, version bump, or kernel switch makes
    the comparison informational again — per the ROADMAP note on runner
    variance, trajectory first, gate second.
    """
    if old.get("env") != new.get("env") or old.get("load_mode") != new.get("load_mode"):
        return []
    regressions = []
    for name, before, after, _pct in diff_artifacts(old, new):
        if "qps" not in name or not before or after is None:
            continue
        drop = 100.0 * (before - after) / abs(before)
        if drop > max_drop_pct:
            regressions.append(
                f"{name}: {before:.4g} -> {after:.4g} "
                f"({drop:.1f}% drop > {max_drop_pct:g}% gate)"
            )
    return regressions


def main(argv) -> int:
    args = list(argv[1:])
    gate_pct = None
    if "--gate-qps-drop" in args:
        at = args.index("--gate-qps-drop")
        try:
            gate_pct = float(args[at + 1])
        except (IndexError, ValueError):
            print("--gate-qps-drop needs a numeric percentage")
            return 2
        del args[at : at + 2]
    if len(args) != 3 or args[0] != "diff":
        print(__doc__)
        print(
            "usage: python benchmarks/artifacts.py diff "
            "[--gate-qps-drop PCT] OLD.json NEW.json"
        )
        return 2
    old_path, new_path = Path(args[1]), Path(args[2])
    if not old_path.exists():
        print(f"no previous artifact at {old_path}; nothing to diff")
        return 0
    old = json.loads(old_path.read_text())
    new = json.loads(new_path.read_text())
    print(format_diff(old, new))
    if gate_pct is not None:
        regressions = gate_regressions(old, new, gate_pct)
        if regressions:
            for line in regressions:
                print(f"REGRESSION {line}")
            return 1
        if old.get("env") != new.get("env") or old.get("load_mode") != new.get(
            "load_mode"
        ):
            print("provenance differs; qps gate skipped (informational diff only)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
