"""E1 / Fig. 1 — Theorem 2: Algorithm 1 uses O(k (log d)^{1/k}) probes.

Regenerates the round/probe tradeoff curve: mean and max probes per query
as k sweeps 1..8 at two dimensions, printed next to the analytic envelope
k·(log₂ d)^{1/k}.  Shape criteria (asserted): probes fall monotonically in
k, max probes stay within a constant multiple of the envelope, and every
query respects its round budget.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import pytest

from benchmarks.conftest import cached_planted
from repro.analysis.reporting import print_table
from repro.analysis.tradeoff import sweep_algorithm1
from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.params import Algorithm1Params, BaseParameters
from repro.lowerbound.bounds import ub_algorithm1

KS = [1, 2, 3, 4, 6, 8]
DIMS = [1024, 4096]


@pytest.fixture(scope="module")
def e1_rows(bench_gamma, report_table):
    rows = []
    for d in DIMS:
        wl = cached_planted(n=300, d=d, queries=16, max_flips=d // 16)
        for summary in sweep_algorithm1(wl, bench_gamma, ks=KS, c1=8.0):
            k = summary.extras["k"]
            envelope = ub_algorithm1(k, d)
            rows.append(
                {
                    "d": d,
                    "k": k,
                    "tau": summary.extras["tau"],
                    "probes(mean)": round(summary.mean_probes, 1),
                    "probes(max)": summary.max_probes,
                    "rounds(max)": summary.max_rounds,
                    "envelope": round(envelope, 1),
                    "max/envelope": round(summary.max_probes / envelope, 2),
                    "success": round(summary.success_rate, 2),
                }
            )
    report_table("E1 (Fig. 1): Algorithm 1 probes vs rounds k", rows)
    return rows


def test_e1_shape_monotone_in_k(e1_rows):
    for d in DIMS:
        series = [r for r in e1_rows if r["d"] == d]
        probes = [r["probes(mean)"] for r in series]
        # Weakly decreasing with 10% tolerance for sampling noise.
        assert all(b <= a * 1.1 for a, b in zip(probes, probes[1:]))


def test_e1_probes_track_envelope(e1_rows):
    assert all(r["max/envelope"] <= 6.0 for r in e1_rows)


def test_e1_rounds_respect_budget(e1_rows):
    assert all(r["rounds(max)"] <= r["k"] for r in e1_rows)


def test_e1_query_latency_k3(benchmark, bench_gamma, e1_rows):
    """Wall-clock of one k=3 query (simulator throughput, not a paper claim)."""
    wl = cached_planted(n=300, d=4096, queries=16, max_flips=256)
    db = wl.database
    base = BaseParameters(n=len(db), d=db.d, gamma=bench_gamma, c1=8.0)
    scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=3), seed=0)
    scheme.query(wl.queries[0])  # warm sketch caches
    benchmark(lambda: scheme.query(wl.queries[1]))
