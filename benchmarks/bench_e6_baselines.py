"""E6 / Tab. 3 — the introduction's comparison: non-adaptive LSH
(O~(n^ρ·levels) probes, O~(n^{1+ρ}) cells) vs Algorithm 1 at k=1
(O(log d) probes, larger polynomial cells) vs linear scan vs the fully
adaptive extreme.

Every contender is built by name through the scheme registry from an
:class:`~repro.api.IndexSpec` — no scheme-specific construction here.

Shape criteria: at one round, Algorithm 1's probe count beats LSH's by a
growing factor as n grows, while its logical table exponent is larger —
the paper's probes-for-space trade.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import pytest

from benchmarks.conftest import cached_planted
from repro.analysis.tradeoff import evaluate_spec
from repro.api import IndexSpec
from repro.registry import build_scheme, filter_params

D, GAMMA = 1024, 4.0
NS = [150, 300, 600]

#: (label, scheme name, extra params) — filtered to what each scheme accepts
CONTENDERS = [
    ("LSH nonadaptive", "lsh", {"table_boost": 1.5}),
    ("Alg1 k=1", "algorithm1", {"rounds": 1, "c1": 8.0}),
    ("Alg1 k=3", "algorithm1", {"rounds": 3, "c1": 8.0}),
    ("fully adaptive", "fully-adaptive", {"c1": 8.0}),
    ("linear scan", "linear-scan", {}),
]


def contender_spec(name: str, extra: dict, seed: int = 2) -> IndexSpec:
    params = filter_params(name, {"gamma": GAMMA, **extra})
    return IndexSpec(scheme=name, params=params, seed=seed)


@pytest.fixture(scope="module")
def e6_rows(report_table):
    rows = []
    for n in NS:
        wl = cached_planted(n=n, d=D, queries=12, max_flips=60, seed=7)
        for label, name, extra in CONTENDERS:
            s = evaluate_spec(contender_spec(name, extra), wl, GAMMA)
            rows.append(
                {
                    "n": n,
                    "scheme": label,
                    "probes(mean)": round(s.mean_probes, 1),
                    "rounds(max)": s.max_rounds,
                    "success": round(s.success_rate, 2),
                    "cells=n^c": s.extras["cells=n^c"],
                }
            )
    report_table(f"E6 (Tab. 3): baselines at d={D}, γ={GAMMA}", rows)
    return rows


def _by(rows, n, scheme):
    return next(r for r in rows if r["n"] == n and r["scheme"] == scheme)


def test_e6_alg1_beats_lsh_probes_at_one_round(e6_rows):
    for n in NS:
        assert _by(e6_rows, n, "Alg1 k=1")["probes(mean)"] < _by(e6_rows, n, "LSH nonadaptive")["probes(mean)"]


def test_e6_lsh_probe_gap_grows_with_n(e6_rows):
    """LSH probes grow ~ n^ρ while Alg 1 (k=1) stays ~ log d."""
    gaps = [
        _by(e6_rows, n, "LSH nonadaptive")["probes(mean)"]
        / _by(e6_rows, n, "Alg1 k=1")["probes(mean)"]
        for n in NS
    ]
    assert gaps[-1] > gaps[0]


def test_e6_linear_scan_probes_are_n(e6_rows):
    for n in NS:
        assert _by(e6_rows, n, "linear scan")["probes(mean)"] == n


def test_e6_space_ordering(e6_rows):
    """Alg 1's table exponent exceeds LSH's (probes-for-space trade)."""
    for n in NS:
        assert _by(e6_rows, n, "Alg1 k=1")["cells=n^c"] > _by(e6_rows, n, "LSH nonadaptive")["cells=n^c"]


def test_e6_lsh_query_latency(benchmark, e6_rows):
    wl = cached_planted(n=300, d=D, queries=12, max_flips=60, seed=7)
    scheme = build_scheme(wl.database, contender_spec("lsh", {}))
    benchmark(lambda: scheme.query(wl.queries[0]))
