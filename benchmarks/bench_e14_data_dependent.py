"""E14 — the introduction's adaptivity ladder, measured on one workload.

Section 1's narrative: non-adaptive LSH (1 round) < data-dependent LSH
(2 rounds: a data-dependent hash is retrieved before the second, mutually
non-adaptive, round) < the polynomial-table schemes < fully adaptive.
On a clustered database the data-dependent probe saving is visible: the
round-1 dispatch confines round 2 to one part of size n_p ≪ n, whose LSH
needs only ~n_p^ρ tables.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import pytest

from repro.analysis.tradeoff import evaluate_scheme
from repro.baselines.adaptive import FullyAdaptiveScheme
from repro.baselines.data_dependent_lsh import (
    DataDependentLSHParams,
    DataDependentLSHScheme,
)
from repro.baselines.lsh import LSHParams, LSHScheme
from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.params import Algorithm1Params, BaseParameters
from repro.workloads.spec import WorkloadSpec, make_workload

GAMMA = 4.0


@pytest.fixture(scope="module")
def e14_rows(report_table):
    wl = make_workload(
        "clustered", WorkloadSpec(n=400, d=1024, num_queries=16, seed=9),
        clusters=8, cluster_radius=24,
    )
    db = wl.database
    base = BaseParameters(n=len(db), d=db.d, gamma=GAMMA, c1=8.0)
    contenders = [
        ("LSH (non-adaptive)", LSHScheme(db, LSHParams(gamma=GAMMA), seed=3)),
        ("data-dependent LSH (2 rounds)",
         DataDependentLSHScheme(db, DataDependentLSHParams(gamma=GAMMA, parts=8), seed=3)),
        ("Alg1 k=2", SimpleKRoundScheme(db, Algorithm1Params(base, k=2), seed=3)),
        ("fully adaptive", FullyAdaptiveScheme(db, base, seed=3)),
    ]
    rows = []
    for label, scheme in contenders:
        s = evaluate_scheme(scheme, wl, GAMMA)
        rows.append(
            {
                "scheme": label,
                "rounds(max)": s.max_rounds,
                "probes(mean)": round(s.mean_probes, 1),
                "success": round(s.success_rate, 2),
            }
        )
    report_table("E14: the adaptivity ladder on a clustered workload", rows)
    return rows


def _probes(rows, label):
    return next(r["probes(mean)"] for r in rows if r["scheme"].startswith(label))


def test_e14_data_dependent_beats_global_lsh(e14_rows):
    assert _probes(e14_rows, "data-dependent") < _probes(e14_rows, "LSH (non-adaptive)")


def test_e14_polynomial_tables_beat_both(e14_rows):
    assert _probes(e14_rows, "Alg1") < _probes(e14_rows, "data-dependent")


def test_e14_ladder_monotone_in_adaptivity(e14_rows):
    """More adaptivity, fewer probes — the introduction's picture."""
    ladder = [
        _probes(e14_rows, "LSH (non-adaptive)"),
        _probes(e14_rows, "data-dependent"),
        _probes(e14_rows, "Alg1"),
        _probes(e14_rows, "fully adaptive"),
    ]
    assert all(b < a for a, b in zip(ladder, ladder[1:]))


def test_e14_success_floors(e14_rows):
    assert all(r["success"] >= 0.7 for r in e14_rows)


def test_e14_dd_query_latency(benchmark, e14_rows):
    wl = make_workload(
        "clustered", WorkloadSpec(n=400, d=1024, num_queries=4, seed=9),
        clusters=8, cluster_radius=24,
    )
    scheme = DataDependentLSHScheme(
        wl.database, DataDependentLSHParams(gamma=GAMMA, parts=8), seed=3
    )
    scheme.query(wl.queries[0])
    benchmark(lambda: scheme.query(wl.queries[1]))
