"""Shared benchmark helpers.

Each ``bench_eN_*.py`` module reproduces one experiment of DESIGN.md's
index: a module-scoped fixture computes the experiment's rows once and
prints the markdown table (these are the rows EXPERIMENTS.md records), and
``test_*`` functions additionally time a representative operation through
pytest-benchmark.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.workloads.spec import WorkloadSpec, make_workload


@functools.lru_cache(maxsize=16)
def cached_planted(n: int, d: int, queries: int, max_flips: int, seed: int = 0):
    """Planted workload, cached across bench modules."""
    return make_workload(
        "planted",
        WorkloadSpec(n=n, d=d, num_queries=queries, seed=seed),
        max_flips=max_flips,
    )


@functools.lru_cache(maxsize=8)
def cached_uniform_db(n: int, d: int, seed: int = 0) -> PackedPoints:
    rng = np.random.default_rng(seed)
    return PackedPoints(random_points(rng, n, d), d)


def planted_query(db: PackedPoints, flips: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    base = db.row(int(rng.integers(0, len(db))))
    return flip_random_bits(rng, base, flips, db.d)


@pytest.fixture(scope="session")
def bench_gamma() -> float:
    return 4.0


@pytest.fixture(scope="session")
def report_table(pytestconfig):
    """Print an experiment table to the live terminal (bypassing pytest's
    capture) and append it to ``results/experiment_tables.md`` so the rows
    can be transcribed into EXPERIMENTS.md."""
    import pathlib

    from repro.analysis.reporting import format_markdown_table

    out_dir = pathlib.Path(__file__).resolve().parent.parent / "results"
    out_dir.mkdir(exist_ok=True)
    out_file = out_dir / "experiment_tables.md"
    out_file.unlink(missing_ok=True)  # fresh file per session
    capman = pytestconfig.pluginmanager.getplugin("capturemanager")

    def _report(title: str, rows, columns=None) -> str:
        text = f"\n### {title}\n\n" + format_markdown_table(rows, columns) + "\n"
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(text)
        else:  # pragma: no cover - capture disabled runs
            print(text)
        with out_file.open("a") as fh:
            fh.write(text)
        return text

    return _report
