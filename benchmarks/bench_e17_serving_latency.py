"""E17 — online serving: adaptive micro-batching vs batch-size-1 serving.

Not a paper claim (the paper's cost model is probes, not seconds): this
experiment characterizes the online layer added in
:mod:`repro.service.server`, the way E15 characterizes the offline
batched engine.  An open-loop driver fires queries at an
:class:`~repro.service.server.AsyncANNService` at fixed arrival rates
(arrival times do not wait for completions, as in real traffic); the
service coalesces whatever is pending into micro-batches under the
``max_batch``/``max_wait_ms`` policy and executes each flush through the
batched engine.  The comparison is the same service with ``max_batch=1``
— every request served alone, the rate a naive one-query-at-a-time
server sustains.

Criteria (asserted): at saturation (arrival rate well above the
batch-size-1 capacity), the micro-batched service with cap ≥ 64 sustains
at least 2× the queries/sec of batch-size-1 serving, and every request's
result is bitwise-identical to a sequential ``index.query`` loop —
micro-batching buys throughput without touching the answers or their
probe/round accounting.

Catalog: ``docs/BENCHMARKS.md``; serving architecture and tuning guide:
``docs/SERVING.md``.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.service import AsyncANNService

# Reference workload: E15's simulator-bound sizes, where per-query
# dispatch overhead is what micro-batching amortizes.
N, D, K = 400, 1024, 3
NUM_REQUESTS = 256
MICRO_BATCH_CAP = 64
MAX_WAIT_MS = 5.0

INDEX_SPEC = IndexSpec(
    scheme="algorithm1", params={"gamma": 4.0, "rounds": K, "c1": 8.0}, seed=11
)


def _build_index(db):
    index = ANNIndex.from_spec(db, INDEX_SPEC)
    index.prepare()  # isolate marginal per-query cost, as in E15
    return index


@pytest.fixture(scope="module")
def e17_workload():
    gen = np.random.default_rng(2017)
    db = PackedPoints(random_points(gen, N, D), D)
    queries = np.vstack(
        [
            flip_random_bits(gen, db.row(int(gen.integers(0, N))), int(gen.integers(0, D // 20)), D)
            for _ in range(NUM_REQUESTS)
        ]
    )
    return db, queries


async def _drive_open_loop(index, queries, rate_qps, max_batch, max_wait_ms):
    """Fire one request per query at fixed inter-arrival spacing; return
    (results in query order, makespan seconds, latencies, metrics)."""
    interval = 0.0 if rate_qps == float("inf") else 1.0 / rate_qps
    service = AsyncANNService(index, max_batch=max_batch, max_wait_ms=max_wait_ms)
    async with service:
        loop = asyncio.get_running_loop()

        async def fire(qi):
            await asyncio.sleep(qi * interval)
            begin = loop.time()
            result = await service.query(queries[qi])
            return result, loop.time() - begin

        start = time.perf_counter()
        outcomes = await asyncio.gather(*(fire(qi) for qi in range(len(queries))))
        makespan = time.perf_counter() - start
        metrics = service.metrics()
    results = [result for result, _ in outcomes]
    latencies = sorted(latency for _, latency in outcomes)
    return results, makespan, latencies, metrics


def _serve_run(db, queries, rate_qps, max_batch):
    index = _build_index(db)
    return asyncio.run(
        _drive_open_loop(index, queries, rate_qps, max_batch, MAX_WAIT_MS)
    )


def _pctl(sorted_vals, q):
    return sorted_vals[min(len(sorted_vals) - 1, int(q / 100 * len(sorted_vals)))]


@pytest.fixture(scope="module")
def e17_rows(e17_workload, report_table):
    db, queries = e17_workload
    # Sequential reference: the answers every serving run must reproduce.
    reference_index = _build_index(db)
    reference = [reference_index.query_packed(q) for q in queries]

    # Batch-size-1 capacity at saturation sets the arrival-rate ladder.
    _, base_makespan, _, _ = _serve_run(db, queries, float("inf"), 1)
    base_capacity = len(queries) / base_makespan
    rates = [0.5 * base_capacity, 2.0 * base_capacity, float("inf")]
    labels = ["0.5x cap", "2x cap", "saturation"]

    rows = []
    for label, rate in zip(labels, rates):
        for policy, cap in (("batch=1", 1), (f"batch≤{MICRO_BATCH_CAP}", MICRO_BATCH_CAP)):
            results, makespan, latencies, metrics = _serve_run(db, queries, rate, cap)
            identical = all(
                s.answer_index == r.answer_index
                and s.probes == r.probes
                and s.rounds == r.rounds
                and s.probes_per_round == r.probes_per_round
                for s, r in zip(reference, results)
            )
            rows.append(
                {
                    "arrival": label,
                    "policy": policy,
                    "q/s": round(len(queries) / makespan),
                    "p50 ms": round(_pctl(latencies, 50) * 1000, 2),
                    "p95 ms": round(_pctl(latencies, 95) * 1000, 2),
                    "mean batch": round(metrics.mean_batch, 1),
                    "identical": identical,
                }
            )
    report_table(
        f"E17: open-loop serving, micro-batch vs batch-1 "
        f"(n={N}, d={D}, k={K}, {NUM_REQUESTS} requests, wait≤{MAX_WAIT_MS:g}ms)",
        rows,
    )
    from artifacts import write_artifact

    saturated = next(
        r for r in rows if r["arrival"] == "saturation" and r["policy"].startswith("batch≤")
    )
    single = next(
        r for r in rows if r["arrival"] == "saturation" and r["policy"] == "batch=1"
    )
    write_artifact(
        "e17_serving_latency",
        {
            "saturation_qps_batch1": single["q/s"],
            "saturation_qps_micro": saturated["q/s"],
            "micro_speedup": saturated["q/s"] / single["q/s"],
            "saturation_p50_ms": saturated["p50 ms"],
            "saturation_p95_ms": saturated["p95 ms"],
            "mean_batch": saturated["mean batch"],
        },
        extras={"n": N, "d": D, "requests": NUM_REQUESTS, "max_batch": MICRO_BATCH_CAP},
    )
    return rows


def _row(rows, arrival, policy_prefix):
    return next(
        r for r in rows if r["arrival"] == arrival and r["policy"].startswith(policy_prefix)
    )


def test_e17_all_runs_bitwise_identical(e17_rows):
    assert all(r["identical"] for r in e17_rows)


def test_e17_micro_batching_2x_at_saturation(e17_rows):
    single = _row(e17_rows, "saturation", "batch=1")
    micro = _row(e17_rows, "saturation", "batch≤")
    speedup = micro["q/s"] / single["q/s"]
    assert speedup >= 2.0, (
        f"expected micro-batched serving >= 2x batch-1 q/s at saturation, "
        f"got {speedup:.2f}x ({micro['q/s']} vs {single['q/s']})"
    )


def test_e17_saturation_batches_fill(e17_rows):
    # At saturation the coalescer should actually be batching: mean
    # occupancy well above 1 is what the speedup assert rests on.
    micro = _row(e17_rows, "saturation", "batch≤")
    assert micro["mean batch"] >= 4.0


def test_e17_light_load_stays_low_latency(e17_rows):
    # At half the batch-1 capacity, micro-batching's p95 may add at most
    # the wait deadline plus scheduling slack over batch-1 serving — the
    # latency cost side of the trade-off documented in docs/SERVING.md.
    single = _row(e17_rows, "0.5x cap", "batch=1")
    micro = _row(e17_rows, "0.5x cap", "batch≤")
    slack_ms = 10 * MAX_WAIT_MS + 50.0
    assert micro["p95 ms"] <= single["p95 ms"] + slack_ms
