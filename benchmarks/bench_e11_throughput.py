"""E11 — simulator wall-clock micro-benchmarks.

Not a paper claim (the paper's cost model is probes, not seconds); this
bench tracks the simulator's own performance across n, d, and k so
regressions in the vectorized substrate are caught.
"""

import pytest

from benchmarks.conftest import cached_planted
from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.lambda_ann import OneProbeNearNeighborScheme
from repro.core.params import Algorithm1Params, BaseParameters
from repro.sketch.parity import ParitySketch

import numpy as np


@pytest.mark.parametrize("k", [1, 4])
def test_e11_query_vs_k(benchmark, k):
    wl = cached_planted(n=300, d=2048, queries=8, max_flips=100, seed=11)
    db = wl.database
    base = BaseParameters(n=len(db), d=db.d, gamma=4.0, c1=8.0)
    scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=k), seed=0)
    scheme.query(wl.queries[0])  # warm level caches
    benchmark(lambda: scheme.query(wl.queries[1]))


@pytest.mark.parametrize("d", [512, 4096])
def test_e11_query_vs_d(benchmark, d):
    wl = cached_planted(n=200, d=d, queries=8, max_flips=d // 20, seed=12)
    db = wl.database
    base = BaseParameters(n=len(db), d=d, gamma=4.0, c1=8.0)
    scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=3), seed=0)
    scheme.query(wl.queries[0])
    benchmark(lambda: scheme.query(wl.queries[1]))


def test_e11_sketch_apply_many(benchmark):
    rng = np.random.default_rng(0)
    from repro.hamming.sampling import random_points

    pts = random_points(rng, 1000, 2048)
    sk = ParitySketch(rows=64, d=2048, p=0.01, rng=rng)
    benchmark(lambda: sk.apply_many(pts))


def test_e11_one_probe_scheme(benchmark):
    wl = cached_planted(n=300, d=2048, queries=8, max_flips=64, seed=13)
    db = wl.database
    base = BaseParameters(n=len(db), d=db.d, gamma=4.0, c1=8.0)
    scheme = OneProbeNearNeighborScheme(db, base, lam=16.0, seed=0)
    scheme.query(wl.queries[0])
    benchmark(lambda: scheme.query(wl.queries[1]))
