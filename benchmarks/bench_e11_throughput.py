"""E11 — simulator wall-clock micro-benchmarks.

Not a paper claim (the paper's cost model is probes, not seconds); this
bench tracks the simulator's own performance across n, d, and k so
regressions in the vectorized substrate are caught.  Schemes are built
through the registry so the measured path is the production one.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import pytest

from benchmarks.conftest import cached_planted
from repro.api import IndexSpec
from repro.registry import build_scheme
from repro.sketch.parity import ParitySketch

import numpy as np


def _alg1(db, k: int):
    return build_scheme(
        db,
        IndexSpec(scheme="algorithm1", params={"gamma": 4.0, "rounds": k, "c1": 8.0}, seed=0),
    )


@pytest.mark.parametrize("k", [1, 4])
def test_e11_query_vs_k(benchmark, k):
    wl = cached_planted(n=300, d=2048, queries=8, max_flips=100, seed=11)
    scheme = _alg1(wl.database, k)
    scheme.query(wl.queries[0])  # warm level caches
    benchmark(lambda: scheme.query(wl.queries[1]))


@pytest.mark.parametrize("d", [512, 4096])
def test_e11_query_vs_d(benchmark, d):
    wl = cached_planted(n=200, d=d, queries=8, max_flips=d // 20, seed=12)
    scheme = _alg1(wl.database, 3)
    scheme.query(wl.queries[0])
    benchmark(lambda: scheme.query(wl.queries[1]))


def test_e11_sketch_apply_many(benchmark):
    rng = np.random.default_rng(0)
    from repro.hamming.sampling import random_points

    pts = random_points(rng, 1000, 2048)
    sk = ParitySketch(rows=64, d=2048, p=0.01, rng=rng)
    benchmark(lambda: sk.apply_many(pts))


def test_e11_one_probe_scheme(benchmark):
    wl = cached_planted(n=300, d=2048, queries=8, max_flips=64, seed=13)
    scheme = build_scheme(
        wl.database,
        IndexSpec(scheme="lambda-ann", params={"gamma": 4.0, "lam": 16.0, "c1": 8.0}, seed=0),
    )
    scheme.query(wl.queries[0])
    benchmark(lambda: scheme.query(wl.queries[1]))
