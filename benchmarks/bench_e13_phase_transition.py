"""E13 — the "phase transition" of Section 1 and Claim 26's anchor.

The paper: for some small ``k₁ = Θ(log log d / log log log d)``, any
k₁-round algorithm averages ``(log log d)^{Ω(1)}`` probes per round
(from Theorem 4), whereas for a larger ``k₂ = Θ(same)``, one probe per
round suffices (Theorem 3).  Both sides are asymptotic statements about
closed-form curves; this bench tabulates them over a d grid (probes/round
implied by the lower bound at k₁ = transition/2 vs. the constant 1 at
k₂ = transition) and additionally measures Claim 26's silent-protocol
ceiling, the contradiction anchor of the ledger.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import numpy as np
import pytest

from repro.lowerbound.bounds import (
    cr_fully_adaptive_bound,
    lb_tradeoff,
    phase_transition_k,
)
from repro.lowerbound.claim26 import best_silent_success, simulate_silent_protocol

D_EXPONENTS = [16, 64, 256, 4096, 65536]  # d = 2^e, up to asymptotic scales


@pytest.fixture(scope="module")
def e13_rows(report_table):
    rows = []
    for e in D_EXPONENTS:
        d = 2**e if e <= 64 else None
        log2_d = float(e)
        # phase_transition_k and the curves only need log d; recompute
        # symbolically for the huge exponents.
        import math

        lld = math.log2(log2_d)
        llld = math.log2(max(2.0, lld))
        transition = max(1, round(lld / max(1.0, llld)))
        k1 = max(1, transition // 2)
        lb_total = (1.0 / k1) * (log2_d / math.log2(3.0)) ** (1.0 / k1)
        rows.append(
            {
                "log2 d": e,
                "transition k=Θ(llд/lllд)": transition,
                "k1 (below)": k1,
                "lb probes/round at k1": round(lb_total / k1, 2),
                "probes/round at k2 (Thm 3)": 1,
            }
        )
    report_table("E13: the round phase transition (bound curves)", rows)

    claim_rows = []
    rng = np.random.default_rng(26)
    for sigma in (4, 16, 256):
        result = simulate_silent_protocol(sigma, trials=4000, rng=rng)
        claim_rows.append(
            {
                "|Σ|": sigma,
                "measured silent success": round(result.rate, 4),
                "Claim 26 bound 1/|Σ|": round(result.bound, 4),
                "within bound+3σ": result.rate
                <= result.bound + 3.0 * (result.bound / result.trials) ** 0.5 + 0.01,
            }
        )
    report_table("E13b: Claim 26 — silent LPM₁,₁ success vs 1/|Σ|", claim_rows)
    return {"transition": rows, "claim26": claim_rows}


def test_e13_gap_widens_with_d(e13_rows):
    """Below the transition, the per-round demand (log log d)^{Ω(1)} grows
    without bound while the above-transition side stays at 1."""
    demands = [r["lb probes/round at k1"] for r in e13_rows["transition"]]
    assert demands[-1] > demands[0]
    assert demands[-1] > 4.0  # clearly separated from 1 at asymptotic d


def test_e13_transition_grows_like_cr_bound(e13_rows):
    last = e13_rows["transition"][-1]
    assert last["transition k=Θ(llд/lllд)"] >= 3


def test_e13_claim26_bound_respected(e13_rows):
    for row in e13_rows["claim26"]:
        assert row["within bound+3σ"]


def test_e13_best_silent_success_formula():
    assert best_silent_success(8) == 0.125
    with pytest.raises(ValueError):
        best_silent_success(1)


def test_e13_curve_latency(benchmark, e13_rows):
    benchmark(lambda: [phase_transition_k(2**16), cr_fully_adaptive_bound(2**16),
                       lb_tradeoff(2, 2**16, 3.0)])
