"""E18 — distributed serving: router latency and replica-kill recovery.

Not a paper claim: this experiment characterizes the replicated cluster
layer (``repro.service.cluster`` / ``docs/DISTRIBUTED.md``) the way E17
characterizes the single-process online layer.  A real 2-shard ×
2-replica cluster of ``repro shard-serve`` subprocesses runs behind a
``repro route`` router; a closed-loop driver measures end-to-end
request latency through the full stack (client socket → router →
replica fan-out → true-distance merge), then SIGKILLs a replica and
measures both the degraded-mode latency (reads failing over to the
sibling) and the recovery time — restart from the stale snapshot until
the router's write-log replay marks the replica alive again.

The durability section runs the same cluster with ``--log-dir`` (the
per-shard write-ahead log): it measures write latency with and without
the fsync-per-append WAL, SIGKILLs the **router** and times the
``--recover`` restart, and checks the recovered router still answers
bitwise-identically.

Criteria (asserted): every routed answer — healthy, degraded, after
replica recovery, and after *router* recovery — is bitwise-identical
to the in-process :class:`~repro.service.sharded.ShardedANNIndex`
oracle; a killed replica and a killed router both recover within the
(generous) bound below; and the WAL write p50 stays within
``WAL_WRITE_FACTOR``× of the in-memory write log.  The timing rows are
informational on shared runners.

Artifacts: ``results/BENCH_e18_cluster.json`` via ``artifacts.py`` —
serving p50/p99, degraded p50, batch throughput, replica/router
recovery seconds, WAL vs in-memory write p50.
Catalog: ``docs/BENCHMARKS.md``; architecture: ``docs/DISTRIBUTED.md``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.hamming.packing import unpack_bits
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.service.harness import ClusterHarness
from repro.service.sharded import ShardedANNIndex

N, D, K = 512, 512, 2
SHARDS, REPLICAS = 2, 2
NUM_REQUESTS = 150
NUM_WRITES = 40
RECOVERY_BOUND_S = 30.0
# Acceptance: durability must not cost more than 2x on the write path
# (one fsync'd JSONL append per write).  The +0.5 ms floor keeps the
# ratio meaningful when both p50s are down in timer-noise territory.
WAL_WRITE_FACTOR = 2.0
WAL_WRITE_SLACK_MS = 0.5

INDEX_SPEC = IndexSpec(
    scheme="algorithm1", params={"gamma": 4.0, "rounds": K, "c1": 8.0}, seed=2018
)


def _pctl(sorted_vals, q):
    return sorted_vals[min(len(sorted_vals) - 1, int(q / 100 * len(sorted_vals)))]


@pytest.fixture(scope="module")
def e18_workload(tmp_path_factory):
    gen = np.random.default_rng(2018)
    db = PackedPoints(random_points(gen, N, D), D)
    queries = [
        [
            int(b)
            for b in unpack_bits(
                flip_random_bits(
                    gen,
                    db.row(int(gen.integers(0, N))),
                    int(gen.integers(0, D // 20)),
                    D,
                )[None, :],
                D,
            )[0]
        ]
        for _ in range(NUM_REQUESTS)
    ]
    snap = ShardedANNIndex.build(db, INDEX_SPEC, shards=SHARDS).save(
        tmp_path_factory.mktemp("e18") / "snap"
    )
    return snap, queries


def _expected(oracle, bits):
    result = oracle.query(np.asarray(bits, dtype=np.uint8))
    return (result.answered, result.answer_index, result.probes, result.rounds)


def _observed(remote):
    return (remote.answered, remote.answer_index, remote.probes, remote.rounds)


def _timed_queries(client, oracle, queries):
    """Closed-loop latencies (ms, sorted); every answer oracle-checked."""
    latencies = []
    for bits in queries:
        begin = time.perf_counter()
        remote = client.query(bits)
        latencies.append((time.perf_counter() - begin) * 1000.0)
        assert _observed(remote) == _expected(oracle, bits)
    return sorted(latencies)


@pytest.fixture(scope="module")
def e18_rows(e18_workload, report_table):
    snap, queries = e18_workload
    oracle = ShardedANNIndex.load(snap)
    with ClusterHarness(snap, replicas=REPLICAS) as cluster:
        with cluster.connect() as client:
            # healthy serving: closed-loop per-request latency
            healthy = _timed_queries(client, oracle, queries)

            # batched path: one round-trip, router fans out per shard
            begin = time.perf_counter()
            remotes = client.query_batch(queries)
            batch_s = time.perf_counter() - begin
            for bits, remote in zip(queries, remotes):
                assert _observed(remote) == _expected(oracle, bits)

            # a write the killed replica will have to replay on catch-up
            gen = np.random.default_rng(7)
            pts = gen.integers(0, 2, size=(4, D), dtype=np.uint8)
            assert client.insert(pts.tolist()) == oracle.insert(pts)

            # degraded mode: one replica down, reads fail over
            cluster.kill_replica(0, 0)
            degraded = _timed_queries(client, oracle, queries)

            # recovery: restart from the stale snapshot; the router's
            # write-log replay revives it (docs/DISTRIBUTED.md)
            cluster.restart_replica(0, 0)
            recovery_s = cluster.wait_replica_alive(0, 0, timeout=RECOVERY_BOUND_S)

            # recovered correctness: the caught-up replica serves alone
            cluster.kill_replica(0, 1)
            recovered = _timed_queries(client, oracle, queries[:32])

    rows = [
        {
            "phase": label,
            "p50 ms": round(_pctl(lats, 50), 2),
            "p99 ms": round(_pctl(lats, 99), 2),
            "q/s": round(len(lats) / (sum(lats) / 1000.0)),
        }
        for label, lats in (
            ("healthy", healthy),
            ("degraded (1 replica down)", degraded),
            ("after catch-up, alone", recovered),
        )
    ]
    rows.append(
        {
            "phase": f"batch×{len(queries)}",
            "p50 ms": "—",
            "p99 ms": "—",
            "q/s": round(len(queries) / batch_s),
        }
    )
    report_table(
        f"E18: routed cluster serving, {SHARDS} shards × {REPLICAS} replicas "
        f"(n={N}, d={D}, k={K}, {NUM_REQUESTS} requests; "
        f"recovery {recovery_s:.2f}s)",
        rows,
    )
    from artifacts import write_artifact

    write_artifact(
        "e18_cluster",
        {
            "serve_p50_ms": _pctl(healthy, 50),
            "serve_p99_ms": _pctl(healthy, 99),
            "degraded_p50_ms": _pctl(degraded, 50),
            "degraded_p99_ms": _pctl(degraded, 99),
            "batch_qps": len(queries) / batch_s,
            "replica_recovery_s": recovery_s,
        },
        extras={
            "n": N,
            "d": D,
            "shards": SHARDS,
            "replicas": REPLICAS,
            "requests": NUM_REQUESTS,
        },
    )
    return {"rows": rows, "recovery_s": recovery_s}


def test_e18_all_phases_matched_the_oracle(e18_rows):
    # _timed_queries asserts per answer; reaching here means healthy,
    # degraded, and post-catch-up phases were all bitwise-identical.
    assert len(e18_rows["rows"]) == 4


def test_e18_replica_recovers_within_bound(e18_rows):
    assert 0.0 <= e18_rows["recovery_s"] <= RECOVERY_BOUND_S


# -- durability: WAL write cost and router crash recovery --------------------
def _timed_writes(cluster, oracle):
    """Closed-loop single-point insert latencies (ms, sorted); ids
    oracle-checked so every write really replicated."""
    latencies = []
    gen = np.random.default_rng(11)
    with cluster.connect() as client:
        for _ in range(NUM_WRITES):
            pts = gen.integers(0, 2, size=(1, D), dtype=np.uint8)
            begin = time.perf_counter()
            ids = client.insert(pts.tolist())
            latencies.append((time.perf_counter() - begin) * 1000.0)
            assert ids == oracle.insert(pts)
    return sorted(latencies)


@pytest.fixture(scope="module")
def e18_durability(e18_workload, report_table, tmp_path_factory):
    snap, queries = e18_workload

    # baseline: the in-memory write log (no --log-dir)
    with ClusterHarness(snap, replicas=REPLICAS) as cluster:
        mem = _timed_writes(cluster, ShardedANNIndex.load(snap))

    # durable: same writes through the fsync-on-append WAL, then kill
    # the router and time the --recover restart
    oracle = ShardedANNIndex.load(snap)
    log_dir = tmp_path_factory.mktemp("e18wal") / "wal"
    with ClusterHarness(snap, replicas=REPLICAS, log_dir=log_dir) as cluster:
        wal = _timed_writes(cluster, oracle)
        cluster.kill_router()
        router_recovery_s = cluster.restart_router(timeout=RECOVERY_BOUND_S)
        with cluster.connect() as client:
            # counters reset with the process; the recovered segment
            # heads carry the durable history across the crash
            segments = client.stats()["wal"]["segments"]
            assert sum(s["head"] for s in segments) >= NUM_WRITES
            for bits in queries[:32]:
                assert _observed(client.query(bits)) == _expected(oracle, bits)

    rows = [
        {
            "write path": label,
            "p50 ms": round(_pctl(lats, 50), 3),
            "p99 ms": round(_pctl(lats, 99), 3),
        }
        for label, lats in (("in-memory log", mem), ("WAL (fsync/append)", wal))
    ]
    report_table(
        f"E18: durable write-ahead log, {NUM_WRITES} single-point inserts "
        f"(router crash recovery {router_recovery_s:.2f}s)",
        rows,
    )
    from artifacts import write_artifact

    write_artifact(
        "e18_cluster_durability",
        {
            "mem_write_p50_ms": _pctl(mem, 50),
            "wal_write_p50_ms": _pctl(wal, 50),
            "wal_write_p99_ms": _pctl(wal, 99),
            "router_recovery_s": router_recovery_s,
        },
        extras={"writes": NUM_WRITES, "shards": SHARDS, "replicas": REPLICAS},
    )
    return {
        "mem_p50": _pctl(mem, 50),
        "wal_p50": _pctl(wal, 50),
        "router_recovery_s": router_recovery_s,
    }


def test_e18_router_recovers_within_bound(e18_durability):
    # the query loop in the fixture already proved the recovered router
    # is bitwise-identical; this pins the recovery-time metric
    assert 0.0 <= e18_durability["router_recovery_s"] <= RECOVERY_BOUND_S


def test_e18_wal_write_p50_within_budget(e18_durability):
    budget = WAL_WRITE_FACTOR * e18_durability["mem_p50"] + WAL_WRITE_SLACK_MS
    assert e18_durability["wal_p50"] <= budget, (
        f"WAL write p50 {e18_durability['wal_p50']:.3f} ms exceeds "
        f"{WAL_WRITE_FACTOR}x the in-memory log "
        f"({e18_durability['mem_p50']:.3f} ms)"
    )
