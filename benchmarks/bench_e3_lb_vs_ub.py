"""E3 / Fig. 3 — Theorem 4 vs Theorems 2/3: the tradeoff sandwich.

Prints, per k: the lower-bound envelope (1/k)(log_γ d)^{1/k}, Algorithm 1's
measured probes, Algorithm 2's measured probes (where admissible), and the
Chakrabarti–Regev fully-adaptive bound.  Shape criteria: measured probes
sit between lb and a constant multiple of ub; the lb→ub gap at constant k
is the paper's k² factor.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import pytest

from benchmarks.conftest import cached_planted
from repro.analysis.reporting import print_table
from repro.analysis.tradeoff import sweep_algorithm1
from repro.lowerbound.bounds import (
    cr_fully_adaptive_bound,
    lb_tradeoff,
    lb_valid_k_max,
    ub_algorithm1,
)

D = 4096
GAMMA = 4.0
KS = [1, 2, 3, 4]


@pytest.fixture(scope="module")
def e3_rows(report_table):
    wl = cached_planted(n=300, d=D, queries=16, max_flips=200, seed=3)
    measured = {
        s.extras["k"]: s for s in sweep_algorithm1(wl, GAMMA, ks=KS, c1=8.0)
    }
    rows = []
    for k in KS:
        rows.append(
            {
                "k": k,
                "lower bound": round(lb_tradeoff(k, D, GAMMA), 2),
                "Alg1 measured(mean)": round(measured[k].mean_probes, 1),
                "Alg1 envelope": round(ub_algorithm1(k, D), 1),
                "ub/lb (≈k²)": round(ub_algorithm1(k, D) / lb_tradeoff(k, D, GAMMA), 1),
            }
        )
    report_table(
        f"E3 (Fig. 3): lower vs upper bounds, d={D}, γ={GAMMA} "
        f"(lb valid for k ≤ {lb_valid_k_max(D)}; CR fully-adaptive bound "
        f"= {cr_fully_adaptive_bound(D):.1f})",
        rows,
    )
    return rows


def test_e3_measured_within_sandwich(e3_rows):
    """Measured probes ≥ a constant fraction of lb and ≤ a constant
    multiple of the envelope."""
    for r in e3_rows:
        assert r["Alg1 measured(mean)"] >= 0.2 * r["lower bound"]
        assert r["Alg1 measured(mean)"] <= 6.0 * r["Alg1 envelope"]


def test_e3_gap_is_k_squared(e3_rows):
    """ub/lb = k² · (log₂d / log_γd)^{1/k}: the paper's k² optimality gap
    up to the log-base conversion factor."""
    import math

    base_factor = math.log2(D) / math.log(D, GAMMA)
    for r in e3_rows:
        expected = r["k"] ** 2 * base_factor ** (1.0 / r["k"])
        assert r["ub/lb (≈k²)"] == pytest.approx(expected, rel=0.1)


def test_e3_lb_curve_latency(benchmark, e3_rows):
    benchmark(lambda: [lb_tradeoff(k, D, GAMMA) for k in range(1, 5)])
