"""A1 — ablations of the design choices DESIGN.md §5 calls out.

1. **Branching factor τ** (Algorithm 1): at a fixed correctness target, τ
   trades probes per round against rounds — τ = 2 is binary search (many
   rounds, 1 probe each), the paper's τ ≈ (log d)^{1/k} balances them, and
   τ > L degenerates to the non-adaptive completion-only scheme.  The
   total-probe minimum sits at intermediate τ, exactly the tradeoff the
   two theorems formalize.
2. **LSH table count L**: recall climbs with L while probes grow linearly
   — the n^ρ table budget is what buys LSH its constant recall, which is
   the cost Algorithm 1's polynomial tables eliminate.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import pytest

from benchmarks.conftest import cached_planted
from repro.analysis.tradeoff import evaluate_scheme
from repro.baselines.lsh import LSHParams, LSHScheme
from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.params import Algorithm1Params, BaseParameters, worst_case_shrinking_rounds

D, GAMMA = 2048, 4.0
TAUS = [2, 3, 5, 8, 13]


@pytest.fixture(scope="module")
def ablation_rows(report_table):
    wl = cached_planted(n=250, d=D, queries=14, max_flips=100, seed=14)
    db = wl.database
    base = BaseParameters(n=len(db), d=D, gamma=GAMMA, c1=8.0)

    tau_rows = []
    for tau in TAUS:
        rounds_needed = worst_case_shrinking_rounds(base.levels, tau) + 1
        params = Algorithm1Params(base, k=max(2, rounds_needed), tau_override=tau)
        scheme = SimpleKRoundScheme(db, params, seed=3)
        s = evaluate_scheme(scheme, wl, GAMMA)
        tau_rows.append(
            {
                "tau": tau,
                "rounds(max)": s.max_rounds,
                "probes(mean)": round(s.mean_probes, 1),
                "probes/round": round(s.mean_probes / max(1.0, s.mean_rounds), 2),
                "success": round(s.success_rate, 2),
            }
        )
    report_table("A1a: Algorithm 1 branching-factor (τ) ablation", tau_rows)

    lsh_rows = []
    for tables in (1, 2, 4, 8):
        scheme = LSHScheme(
            db, LSHParams(gamma=GAMMA, tables_override=tables), seed=5
        )
        s = evaluate_scheme(scheme, wl, GAMMA)
        lsh_rows.append(
            {
                "L (tables/level)": tables,
                "probes(mean)": round(s.mean_probes, 1),
                "success": round(s.success_rate, 2),
            }
        )
    report_table("A1b: LSH table-count (L) ablation", lsh_rows)
    return {"tau": tau_rows, "lsh": lsh_rows}


def test_a1_tau2_maximizes_rounds(ablation_rows):
    rows = ablation_rows["tau"]
    assert rows[0]["tau"] == 2
    assert rows[0]["rounds(max)"] == max(r["rounds(max)"] for r in rows)
    assert rows[0]["probes/round"] <= 2.0


def test_a1_rounds_decrease_with_tau(ablation_rows):
    rounds = [r["rounds(max)"] for r in ablation_rows["tau"]]
    assert all(b <= a for a, b in zip(rounds, rounds[1:]))


def test_a1_correctness_independent_of_tau(ablation_rows):
    """τ only moves cost around; the γ-guarantee is threshold-driven."""
    rates = [r["success"] for r in ablation_rows["tau"]]
    assert min(rates) >= 0.75


def test_a1_lsh_probes_scale_with_tables(ablation_rows):
    rows = ablation_rows["lsh"]
    assert rows[-1]["probes(mean)"] > rows[0]["probes(mean)"]


def test_a1_lsh_recall_monotone_in_tables(ablation_rows):
    rows = ablation_rows["lsh"]
    assert rows[-1]["success"] >= rows[0]["success"]


def test_a1_ablation_latency(benchmark, ablation_rows):
    wl = cached_planted(n=250, d=D, queries=14, max_flips=100, seed=14)
    db = wl.database
    base = BaseParameters(n=len(db), d=D, gamma=GAMMA, c1=8.0)
    params = Algorithm1Params(base, k=3)
    scheme = SimpleKRoundScheme(db, params, seed=3)
    scheme.query(wl.queries[0])
    benchmark(lambda: scheme.query(wl.queries[1]))
