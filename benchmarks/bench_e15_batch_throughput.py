"""E15 — batched query engine throughput vs the sequential loop.

Not a paper claim (the paper's cost model is probes, not seconds): this
experiment measures the serving layer added on top of the simulator.
``ANNIndex.query_batch`` executes every adaptive round for the whole
batch at once — sketch addresses via one vectorized application per
level, cell contents via the structures' batched popcount kernels —
while keeping per-query probe/round accounting identical to the
sequential path (asserted here on every measured run).

Criteria (asserted): at the reference workload, batch size ≥ 256 yields
at least 3× the queries/sec of a sequential ``query`` loop, and the two
paths return identical results.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import time

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points

# Reference workload: simulator-bound sizes (cf. E11's n=300, d=2048)
# where per-query dispatch overhead is what batching amortizes.
N, D, K = 400, 1024, 3
BATCH_SIZES = [64, 256, 1024]
REPS = 3  # best-of timing for both paths (symmetric, robust to noise)

INDEX_SPEC = IndexSpec(
    scheme="algorithm1", params={"gamma": 4.0, "rounds": K, "c1": 8.0}, seed=11
)


def _build_index(db):
    index = ANNIndex.from_spec(db, INDEX_SPEC)
    # Warm the one-time preprocessing (per-level database sketches) so the
    # measurement isolates marginal per-query cost on both paths.
    for i in range(index.scheme.params.base.levels + 1):
        index.scheme.level_sketches.accurate_db(i)
    return index


@pytest.fixture(scope="module")
def e15_workload():
    gen = np.random.default_rng(2015)
    db = PackedPoints(random_points(gen, N, D), D)
    queries = np.vstack(
        [
            flip_random_bits(gen, db.row(int(gen.integers(0, N))), int(gen.integers(0, D // 20)), D)
            for _ in range(max(BATCH_SIZES))
        ]
    )
    return db, queries


def _best_rate(run, batch_size, db):
    """Best-of-REPS queries/sec, a fresh index per rep so every rep pays
    the same cold-cache marginal cost (reusing an index would let later
    reps answer from fully warm table caches on both paths)."""
    best = 0.0
    for _ in range(REPS):
        index = _build_index(db)
        start = time.perf_counter()
        results = run(index)
        elapsed = time.perf_counter() - start
        best = max(best, batch_size / elapsed)
    return best, results, index


@pytest.fixture(scope="module")
def e15_rows(e15_workload, report_table):
    db, all_queries = e15_workload
    rows = []
    for batch_size in BATCH_SIZES:
        queries = all_queries[:batch_size]
        seq_rate, seq_results, _ = _best_rate(
            lambda index: [index.query_packed(q) for q in queries], batch_size, db
        )
        bat_rate, bat_results, bat_index = _best_rate(
            lambda index: index.query_batch(queries), batch_size, db
        )
        identical = all(
            s.answer_index == b.answer_index
            and s.probes == b.probes
            and s.rounds == b.rounds
            and s.probes_per_round == b.probes_per_round
            for s, b in zip(seq_results, bat_results)
        )
        stats = bat_index.last_batch_stats
        rows.append(
            {
                "batch": batch_size,
                "seq q/s": round(seq_rate),
                "batch q/s": round(bat_rate),
                "speedup": round(bat_rate / seq_rate, 2),
                "sweeps": stats.sweeps,
                "prefetched": stats.prefetched_cells,
                "identical": identical,
            }
        )
    report_table(
        f"E15: batched vs sequential throughput (n={N}, d={D}, k={K})", rows
    )
    return rows


def test_e15_batch_identical_to_sequential(e15_rows):
    assert all(r["identical"] for r in e15_rows)


def test_e15_speedup_at_256(e15_rows):
    row = next(r for r in e15_rows if r["batch"] == 256)
    assert row["speedup"] >= 3.0, f"expected >= 3x at batch 256, got {row['speedup']}x"


def test_e15_speedup_holds_at_1024(e15_rows):
    row = next(r for r in e15_rows if r["batch"] == 1024)
    assert row["speedup"] >= 3.0, f"expected >= 3x at batch 1024, got {row['speedup']}x"


def test_e15_query_batch_wallclock(benchmark, e15_workload):
    db, all_queries = e15_workload
    index = _build_index(db)
    queries = all_queries[:256]
    index.query_batch(queries)  # warm table caches
    benchmark(lambda: index.query_batch(queries))
