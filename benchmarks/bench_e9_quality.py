"""E9 / Fig. 4 — approximation quality and success boosting (Section 2).

Measures the achieved approximation-ratio distribution on the adversarial
geometric-shell workload and shows the parallel-repetition boost: success
probability climbs toward 1 with independent copies while the round count
stays at k.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import pytest

from repro.analysis.reporting import print_table
from repro.analysis.tradeoff import evaluate_scheme
from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.boosting import BoostedScheme
from repro.core.params import Algorithm1Params, BaseParameters
from repro.workloads.spec import WorkloadSpec, make_workload

GAMMA = 4.0
COPIES = [1, 2, 4]


@pytest.fixture(scope="module")
def e9_rows(report_table):
    wl = make_workload(
        "shells", WorkloadSpec(n=240, d=1024, num_queries=16, seed=8),
        alpha=2.0, centers=4,
    )
    db = wl.database
    base = BaseParameters(n=len(db), d=db.d, gamma=GAMMA, c1=8.0)
    params = Algorithm1Params(base, k=3)
    rows = []
    for copies in COPIES:
        if copies == 1:
            scheme = SimpleKRoundScheme(db, params, seed=0)
        else:
            scheme = BoostedScheme(
                lambda s: SimpleKRoundScheme(db, params, seed=s),
                seeds=list(range(copies)),
            )
        s = evaluate_scheme(scheme, wl, GAMMA)
        rows.append(
            {
                "copies": copies,
                "probes(mean)": round(s.mean_probes, 1),
                "rounds(max)": s.max_rounds,
                "success": round(s.success_rate, 3),
                "ratio(mean)": s.mean_ratio and round(s.mean_ratio, 2),
            }
        )
    report_table("E9 (Fig. 4): quality and parallel-repetition boosting (shells workload)", rows)
    return rows


def test_e9_boost_improves_success(e9_rows):
    assert e9_rows[-1]["success"] >= e9_rows[0]["success"]


def test_e9_boost_preserves_rounds(e9_rows):
    assert e9_rows[-1]["rounds(max)"] <= e9_rows[0]["rounds(max)"] + 0


def test_e9_probes_scale_linearly(e9_rows):
    base_probes = e9_rows[0]["probes(mean)"]
    assert e9_rows[-1]["probes(mean)"] <= 4.5 * base_probes


def test_e9_ratio_within_gamma(e9_rows):
    boosted = e9_rows[-1]
    assert boosted["ratio(mean)"] is None or boosted["ratio(mean)"] <= GAMMA + 1.0


def test_e9_boosted_query_latency(benchmark, e9_rows):
    wl = make_workload("shells", WorkloadSpec(n=240, d=1024, num_queries=4, seed=8))
    db = wl.database
    base = BaseParameters(n=len(db), d=db.d, gamma=GAMMA, c1=8.0)
    params = Algorithm1Params(base, k=3)
    scheme = BoostedScheme(
        lambda s: SimpleKRoundScheme(db, params, seed=s), seeds=[0, 1]
    )
    scheme.query(wl.queries[0])
    benchmark(lambda: scheme.query(wl.queries[1]))
