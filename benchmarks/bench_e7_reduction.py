"""E7 / Tab. 4 — Lemmas 14–16: the γ-separated ball tree exists (with all
five invariants machine-verified) and the LPM → ANNS reduction preserves
answers end to end, both under an exact solver and under the paper's own
Algorithm 1.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import numpy as np
import pytest

from repro.analysis.reporting import print_table
from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.params import Algorithm1Params, BaseParameters
from repro.hamming.balls import nearest_neighbor
from repro.lowerbound.balltree import SeparatedBallTree
from repro.lowerbound.lpm import random_lpm_instance
from repro.lowerbound.reduction import LPMToANNSReduction

CASES = [
    # (d, gamma, fanout, depth, sigma, n)
    (1024, 2.0, 3, 2, 3, 8),
    (2048, 2.0, 4, 2, 4, 12),
    (4096, 3.0, 4, 2, 4, 12),
]


def _exact(db, x):
    idx, _ = nearest_neighbor(db, x)
    return db.row(idx)


@pytest.fixture(scope="module")
def e7_rows(report_table):
    rows = []
    for d, gamma, fanout, depth, sigma, n in CASES:
        rng = np.random.default_rng(d)
        tree = SeparatedBallTree(d=d, gamma=gamma, fanout=fanout, depth=depth, rng=rng)
        checks = tree.verify()
        inst, queries = random_lpm_instance(rng, m=depth, n=n, sigma=sigma, skew=0.8)
        red = LPMToANNSReduction(inst, tree)
        exact_ok = sum(red.solve_with(_exact, q).correct for q in queries)

        db = red.database
        base = BaseParameters(n=len(db), d=d, gamma=gamma, c1=10.0)
        scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=3), seed=1)

        def alg1(database, x, scheme=scheme):
            return scheme.query(x).answer_packed

        alg1_ok = sum(red.solve_with(alg1, q).correct for q in queries)
        rows.append(
            {
                "d": d,
                "γ": gamma,
                "fanout": fanout,
                "depth": depth,
                "invariants": "all" if all(checks.values()) else str(checks),
                "sep margin": round(tree.verification_margin(), 2),
                "exact recovers": f"{exact_ok}/{len(queries)}",
                "Alg1 recovers": f"{alg1_ok}/{len(queries)}",
            }
        )
    report_table("E7 (Tab. 4): LPM→ANNS reduction validity", rows)
    return rows


def test_e7_invariants_hold(e7_rows):
    assert all(r["invariants"] == "all" for r in e7_rows)


def test_e7_exact_recovery_perfect(e7_rows):
    for r in e7_rows:
        ok, total = map(int, r["exact recovers"].split("/"))
        assert ok == total


def test_e7_alg1_recovery_floor(e7_rows):
    for r in e7_rows:
        ok, total = map(int, r["Alg1 recovers"].split("/"))
        assert ok / total >= 0.75


def test_e7_tree_build_latency(benchmark, e7_rows):
    benchmark(
        lambda: SeparatedBallTree(
            d=1024, gamma=2.0, fanout=3, depth=2, rng=np.random.default_rng(0)
        )
    )
