"""E16 — sharded build scaling and distance-merge serving.

Not a paper claim: this experiment measures the persistence + sharding
layer (``repro.persistence`` / ``repro.service.sharded``) that turns the
single-process simulator into a saveable, partitionable serving system.

Measured:

* **Build scaling** — wall-clock of ``ShardedANNIndex.build`` with 4
  shards, serial (in-process) vs 4 worker processes.  Workers warm each
  shard's preprocessing (per-level database sketching, the real build
  cost) and ship it to the parent through persistence snapshots.
* **Merge fidelity** — the sharded index's answers equal the
  distance-merge oracle over independently built shard indexes
  (asserted on every run).
* **Serving** — merged batch query throughput and aggregated
  probe/round stats per shard count.

Criteria: merge fidelity is asserted unconditionally.  The parallel
speedup assertion (parallel build faster than serial) runs only when the
machine actually has ≥ 2 usable cores — on single-core CI runners
process fan-out cannot beat serial by construction, so there the row is
informational.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import os
import time

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.hamming.distance import hamming_distance
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.core.index import ANNIndex
from repro.service.sharded import ShardedANNIndex, shard_bounds, shard_seed

N, D, K = 4096, 2048, 3
SHARDS = 4
QUERIES = 64

INDEX_SPEC = IndexSpec(
    scheme="algorithm1", params={"gamma": 4.0, "rounds": K, "c1": 8.0}, seed=2016
)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def e16_workload():
    gen = np.random.default_rng(2016)
    db = PackedPoints(random_points(gen, N, D), D)
    queries = np.vstack(
        [
            flip_random_bits(
                gen, db.row(int(gen.integers(0, N))), int(gen.integers(0, D // 20)), D
            )
            for _ in range(QUERIES)
        ]
    )
    return db, queries


def _timed_build(db, workers):
    start = time.perf_counter()
    index = ShardedANNIndex.build(
        db, INDEX_SPEC, shards=SHARDS, workers=workers, warm=True
    )
    return index, time.perf_counter() - start


def _merge_matches_oracle(db, sharded, queries) -> bool:
    bounds = shard_bounds(len(db), sharded.num_shards)
    singles = [
        ANNIndex.from_spec(
            db.take(range(start, stop)),
            INDEX_SPEC.replace(seed=shard_seed(INDEX_SPEC.seed, i)),
        )
        for i, (start, stop) in enumerate(bounds)
    ]
    for qi, res in enumerate(sharded.query_batch(queries)):
        best = None
        for si, single in enumerate(singles):
            r = single.query_packed(queries[qi])
            if r.answer_packed is None:
                continue
            cand = (
                hamming_distance(queries[qi], r.answer_packed),
                bounds[si][0] + r.answer_index,
            )
            if best is None or cand < best:
                best = cand
        if best is None:
            if res.answered:
                return False
        elif res.answer_index != best[1]:
            return False
    return True


@pytest.fixture(scope="module")
def e16_rows(e16_workload, report_table):
    db, queries = e16_workload
    serial_index, serial_time = _timed_build(db, workers=1)
    parallel_index, parallel_time = _timed_build(db, workers=SHARDS)

    rows = []
    for label, index, build_time in (
        ("serial", serial_index, serial_time),
        (f"{SHARDS} workers", parallel_index, parallel_time),
    ):
        start = time.perf_counter()
        results = index.query_batch(queries)
        query_time = time.perf_counter() - start
        stats = index.last_batch_stats
        rows.append(
            {
                "build": label,
                "build s": round(build_time, 2),
                "speedup": round(serial_time / build_time, 2),
                "q/s": round(len(results) / query_time),
                "probes": stats.total_probes,
                "answered": sum(r.answered for r in results),
                "merge ok": _merge_matches_oracle(db, index, queries),
            }
        )
    report_table(
        f"E16: sharded build scaling (n={N}, d={D}, k={K}, S={SHARDS}, "
        f"cores={_usable_cores()})",
        rows,
    )
    from artifacts import write_artifact

    write_artifact(
        "e16_sharded_scale",
        {
            "serial_build_s": serial_time,
            "parallel_build_s": parallel_time,
            "parallel_speedup": serial_time / parallel_time,
            "serial_qps": rows[0]["q/s"],
            "parallel_qps": rows[1]["q/s"],
        },
        extras={"n": N, "d": D, "shards": SHARDS, "cores": _usable_cores()},
    )
    return rows


def test_e16_merge_matches_oracle(e16_rows):
    assert all(r["merge ok"] for r in e16_rows)


def test_e16_parallel_and_serial_builds_answer_identically(e16_workload):
    db, queries = e16_workload
    serial = ShardedANNIndex.build(db, INDEX_SPEC, shards=SHARDS, workers=1)
    parallel = ShardedANNIndex.build(db, INDEX_SPEC, shards=SHARDS, workers=SHARDS)
    for s_res, p_res in zip(serial.query_batch(queries), parallel.query_batch(queries)):
        assert s_res.answer_index == p_res.answer_index
        assert s_res.probes == p_res.probes


@pytest.mark.skipif(
    _usable_cores() < 2,
    reason="parallel build cannot beat serial on a single usable core",
)
def test_e16_parallel_build_faster_than_serial(e16_rows):
    parallel_row = next(r for r in e16_rows if r["build"] != "serial")
    assert parallel_row["speedup"] > 1.0, (
        f"expected 4-worker build to beat serial, got {parallel_row['speedup']}x"
    )


def test_e16_snapshot_round_trip_at_scale(e16_workload, tmp_path):
    db, queries = e16_workload
    index = ShardedANNIndex.build(db, INDEX_SPEC, shards=SHARDS, workers=1)
    index.save(tmp_path / "e16")
    loaded = ShardedANNIndex.load(tmp_path / "e16")
    for s_res, l_res in zip(
        index.query_batch(queries[:16]), loaded.query_batch(queries[:16])
    ):
        assert s_res.answer_index == l_res.answer_index
        assert s_res.probes == l_res.probes
