"""E20 — the popcount/XOR hot path, per kernel backend.

Not a paper claim: this experiment measures the kernel seam added in
v1.9 (``repro.hamming.kernels``).  Every adaptive round bottoms out in
screening a micro-batch of packed queries against packed table rows —
``cross_distances`` for the lockstep sweep, ``hamming_distance_many``
for a single query — so those two calls against an out-of-cache database
are the per-kernel unit measured here, alongside an end-to-end
``ANNIndex.query_batch`` equality check under each backend.

Criteria (asserted):

* every backend's distance matrices are **bitwise-equal** to the
  reference backend's in the same run, and ``query_batch`` answers and
  probe/round accounting are field-by-field identical;
* with a compiled backend registered, batch throughput at batch ≥ 256
  is at least 1.5× the reference backend's queries/sec (self-skips when
  only ``reference`` is available, e.g. no C compiler on the runner).

The table is persisted via ``artifacts.py`` as
``results/BENCH_e20_hot_path.json`` with per-kernel ``*_qps_*`` metrics,
which the CI perf gate (``--gate-qps-drop``) compares run over run on
like-for-like provenance.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import time

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.distance import cross_distances, hamming_distance_many
from repro.hamming.kernels import available_kernels, use_kernel
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points

# A database big enough that one sweep leaves the L2 cache: 8192 rows of
# 16 words (d=1024) is 1 MiB of packed points per full screen.
N, D = 8192, 1024
BATCH_SIZES = [1, 256, 512]
REPS = 5  # best-of timing per (kernel, batch) cell
SPEEDUP_FLOOR = 1.5

# Small end-to-end workload for the engine-level equality check.
INDEX_SPEC = IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=20)
INDEX_N, INDEX_D, INDEX_QUERIES = 300, 512, 32


@pytest.fixture(scope="module")
def e20_workload():
    gen = np.random.default_rng(2020)
    db = random_points(gen, N, D)
    queries = random_points(gen, max(BATCH_SIZES), D)
    return db, queries


def _best_qps(fn, batch_size):
    best = 0.0
    result = None
    for _ in range(REPS):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = max(best, batch_size / elapsed)
    return best, result


@pytest.fixture(scope="module")
def e20_rows(e20_workload, report_table):
    db, queries = e20_workload
    kernels = available_kernels()
    rows = []
    reference_answers = {}
    for kernel in kernels:
        with use_kernel(kernel):
            row = {"kernel": kernel}
            for batch_size in BATCH_SIZES:
                if batch_size == 1:
                    q = queries[0]
                    qps, answer = _best_qps(
                        lambda: hamming_distance_many(q, db), batch_size
                    )
                    row["latency b1 (ms)"] = round(1000.0 / qps, 3)
                else:
                    batch = queries[:batch_size]
                    qps, answer = _best_qps(
                        lambda: cross_distances(batch, db), batch_size
                    )
                row[f"q/s b{batch_size}"] = round(qps, 1)
                # Bitwise equality across backends, same run, same inputs.
                if kernel == "reference":
                    reference_answers[batch_size] = answer
                else:
                    assert np.array_equal(answer, reference_answers[batch_size]), (
                        f"kernel {kernel!r} diverged from reference at "
                        f"batch {batch_size}"
                    )
            rows.append(row)
    report_table(f"E20: hot-path throughput per kernel (n={N}, d={D})", rows)
    return rows


def _qps(rows, kernel, batch_size):
    row = next(r for r in rows if r["kernel"] == kernel)
    return row[f"q/s b{batch_size}"]


def test_e20_engine_answers_identical_under_every_kernel():
    gen = np.random.default_rng(42)
    db = PackedPoints(random_points(gen, INDEX_N, INDEX_D), INDEX_D)
    queries = np.vstack(
        [
            flip_random_bits(
                gen, db.row(int(gen.integers(0, INDEX_N))), 3, INDEX_D
            )
            for _ in range(INDEX_QUERIES)
        ]
    )
    baseline = None
    for kernel in available_kernels():
        with use_kernel(kernel):
            index = ANNIndex.from_spec(db, INDEX_SPEC)
            results = [
                (r.answer_index, r.probes, r.rounds)
                for r in index.query_batch(queries)
            ]
        if baseline is None:
            baseline = results
        else:
            assert results == baseline, f"kernel {kernel!r} changed answers"


def test_e20_compiled_speedup_at_batch_256(e20_rows):
    compiled = [k for k in available_kernels() if k != "reference"]
    if not compiled:
        pytest.skip("no compiled kernel backend registered on this machine")
    reference_qps = _qps(e20_rows, "reference", 256)
    best = max(_qps(e20_rows, k, 256) for k in compiled)
    speedup = best / reference_qps
    assert speedup >= SPEEDUP_FLOOR, (
        f"expected compiled >= {SPEEDUP_FLOOR}x reference q/s at batch 256, "
        f"got {speedup:.2f}x"
    )


def test_e20_artifact(e20_rows):
    from artifacts import write_artifact

    metrics = {}
    for row in e20_rows:
        kernel = row["kernel"]
        metrics[f"{kernel}_latency_b1_ms"] = row["latency b1 (ms)"]
        for batch_size in BATCH_SIZES[1:]:
            metrics[f"{kernel}_qps_b{batch_size}"] = row[f"q/s b{batch_size}"]
    compiled = [k for k in available_kernels() if k != "reference"]
    if compiled:
        best = max(_qps(e20_rows, k, 256) for k in compiled)
        metrics["compiled_speedup_b256"] = round(
            best / _qps(e20_rows, "reference", 256), 3
        )
    path = write_artifact(
        "e20_hot_path",
        metrics,
        extras={
            "n": N,
            "d": D,
            "batch_sizes": BATCH_SIZES,
            "kernels": available_kernels(),
        },
    )
    assert path.exists()
