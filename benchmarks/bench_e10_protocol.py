"""E10 / Fig. 5 — Proposition 18 and Lemma 5/Prop. 6 accounting on real
query traces: k probe rounds → 2k communication rounds with
a_i = t_i⌈log s⌉ and b_i = t_i·w; the private-coin table blowup is O(dn·s).

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import pytest

from benchmarks.conftest import cached_planted
from repro.analysis.reporting import print_table
from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.params import Algorithm1Params, BaseParameters
from repro.lowerbound.newman import proposition6_cells
from repro.lowerbound.protocol import trace_to_protocol
from repro.utils.intmath import ilog2_ceil

D, GAMMA = 1024, 4.0
KS = [1, 2, 3, 4]


@pytest.fixture(scope="module")
def e10_rows(report_table):
    wl = cached_planted(n=250, d=D, queries=8, max_flips=60, seed=10)
    db = wl.database
    base = BaseParameters(n=len(db), d=D, gamma=GAMMA, c1=8.0)
    rows = []
    for k in KS:
        scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=k), seed=0)
        report = scheme.size_report()
        res = scheme.query(wl.queries[0])
        shape = trace_to_protocol(res.accountant, report.table_cells, report.word_bits)
        rows.append(
            {
                "k": k,
                "probe rounds": res.rounds,
                "comm rounds": shape.communication_rounds,
                "alice bits": int(shape.alice_bits),
                "bob bits": int(shape.bob_bits),
                "addr bits ⌈log s⌉": ilog2_ceil(report.table_cells),
                "private-coin cells (Prop.6)": f"{proposition6_cells(report.table_cells, len(db), D):.2e}",
            }
        )
    report_table("E10 (Fig. 5): Prop. 18 protocol sizes from real traces", rows)
    return rows


def test_e10_comm_rounds_twice_probe_rounds(e10_rows):
    for r in e10_rows:
        assert r["comm rounds"] == 2 * r["probe rounds"]
        assert r["comm rounds"] <= 2 * r["k"]


def test_e10_bob_dominates_alice(e10_rows):
    """Word size O(d) ≫ address size O(log n): the asymmetric regime the
    round-elimination argument is built for."""
    for r in e10_rows:
        assert r["bob bits"] > r["alice bits"]


def test_e10_conversion_latency(benchmark, e10_rows):
    wl = cached_planted(n=250, d=D, queries=8, max_flips=60, seed=10)
    db = wl.database
    base = BaseParameters(n=len(db), d=D, gamma=GAMMA, c1=8.0)
    scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=3), seed=0)
    report = scheme.size_report()
    res = scheme.query(wl.queries[1])
    benchmark(lambda: trace_to_protocol(res.accountant, report.table_cells, report.word_bits))
