"""E8 / Tab. 5 — Theorem 24 / Claim 25: the round-elimination recurrence
derives its contradiction exactly when t = O((1/k) m^{1/k}).

Replays the ledger at asymptotic scales (log₂ d up to 10⁸) and reports the
largest t for which the contradiction derives (the implied lower bound t*)
against the theorem's scale ξ = m^{1/k}/k.  Shape criterion: t*/ξ is a
positive, scale-stable constant for every k inside the regime.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import pytest

from repro.analysis.reporting import print_table
from repro.lowerbound.roundelim import RoundEliminationLedger

SCALES = [1e6, 1e7, 1e8]  # log2 d
KS = [1, 2]


@pytest.fixture(scope="module")
def e8_rows(report_table):
    rows = []
    for log2_d in SCALES:
        for k in KS + ([3] if log2_d >= 1e8 else []):
            ledger = RoundEliminationLedger(
                gamma=3.0, k=k, log2_n=log2_d**2, log2_d=log2_d, c1=2.0, c2=1.0
            )
            t_star, result = ledger.implied_lower_bound()
            rows.append(
                {
                    "log2 d": f"{log2_d:.0e}",
                    "k": k,
                    "m": ledger.m,
                    "regime_ok": ledger.regime_ok,
                    "ξ=(1/k)m^{1/k}": round(result.xi, 2),
                    "t* (implied lb)": round(t_star, 4),
                    "t*/ξ": round(t_star / result.xi, 4) if result.xi else None,
                    "final error": round(result.steps[-1].error, 3) if result.steps else None,
                }
            )
    report_table("E8 (Tab. 5): round-elimination ledger (Claim 25 replay)", rows)
    return rows


def test_e8_contradiction_derivable_in_regime(e8_rows):
    in_regime = [r for r in e8_rows if r["regime_ok"]]
    assert in_regime
    assert all(r["t* (implied lb)"] > 0 for r in in_regime)


def test_e8_ratio_scale_stable(e8_rows):
    """t*/ξ varies by < 10× across two orders of magnitude in log d."""
    for k in KS:
        ratios = [r["t*/ξ"] for r in e8_rows if r["k"] == k and r["regime_ok"]]
        if len(ratios) >= 2:
            assert max(ratios) / min(ratios) < 10.0


def test_e8_error_stays_below_seven_eighths(e8_rows):
    for r in e8_rows:
        if r["t* (implied lb)"] > 0 and r["final error"] is not None:
            assert r["final error"] <= 7.0 / 8.0 + 1e-6


def test_e8_ledger_latency(benchmark, e8_rows):
    ledger = RoundEliminationLedger(gamma=3.0, k=2, log2_n=1e12, log2_d=1e6)
    benchmark(lambda: ledger.run(1.0))
