"""E4 / Tab. 1 — Lemma 8: the sandwich B_i ⊆ C_i ⊆ B_{i+1} holds with
probability ≥ 3/4, and the coarse-set fractions stay below n^{-1/s}.

Sweeps the accurate-sketch row count to locate the concentration knee, and
runs the DESIGN.md ablation: the gap-only threshold (the paper's literal
δ·rows reading) destroys the lower inclusion, the midpoint preserves it.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import numpy as np
import pytest

from benchmarks.conftest import cached_planted
from repro.analysis.reporting import print_table
from repro.analysis.sandwich import verify_lemma8
from repro.core.delta import collision_rate, delta_gap, level_radius, bernoulli_rate
from repro.hamming.distance import hamming_distance_many
from repro.sketch.family import SketchFamily
from repro.sketch.parity import ParitySketch
from repro.utils.rng import RngTree

D = 1024
ROWS_SWEEP = [32, 64, 128, 256, 512]


@pytest.fixture(scope="module")
def e4_report(report_table):
    wl = cached_planted(n=200, d=D, queries=12, max_flips=64, seed=4)
    rows = []
    reports = {}
    for rows_count in ROWS_SWEEP:
        fam = SketchFamily(D, 2.0, 10, rows_count, coarse_rows=max(8, rows_count // 8),
                           rng_tree=RngTree(21))
        report = verify_lemma8(wl.database, fam, wl.queries, s_exponent=2.0,
                               coarse_level_pairs=[(8, 6), (10, 10)])
        reports[rows_count] = report
        rows.append(
            {
                "accurate rows": rows_count,
                "P[sandwich all levels]": round(report.simultaneous_rate, 3),
                "coarse miss ok": f"{report.coarse_miss_ok}/{report.coarse_checked}",
                "coarse leak ok": f"{report.coarse_leak_ok}/{report.coarse_checked}",
            }
        )
    report_table("E4 (Tab. 1): Lemma 8 sandwich probability vs sketch rows", rows)
    return reports


def test_e4_probability_floor_at_wide_rows(e4_report):
    assert e4_report[ROWS_SWEEP[-1]].simultaneous_rate >= 0.75


def test_e4_monotone_in_rows(e4_report):
    rates = [e4_report[r].simultaneous_rate for r in ROWS_SWEEP]
    assert rates[-1] >= rates[0]


def test_e4_coarse_fractions(e4_report):
    rep = e4_report[ROWS_SWEEP[-1]]
    assert rep.coarse_miss_ok >= 0.7 * rep.coarse_checked
    assert rep.coarse_leak_ok >= 0.7 * rep.coarse_checked


def test_e4_ablation_gap_only_threshold_breaks_sandwich():
    """DESIGN.md ablation: thresholding at δ·rows alone (instead of the
    midpoint μ_near + δ/2) rejects genuinely-near points."""
    rng = np.random.default_rng(5)
    level, rows = 5, 512
    alpha = 2.0
    p = bernoulli_rate(alpha, level)
    sk = ParitySketch(rows=rows, d=D, p=p, rng=rng)
    from repro.hamming.sampling import flip_random_bits, random_points

    x = random_points(rng, 1, D)[0]
    near = flip_random_bits(rng, x, int(level_radius(alpha, level)), D)  # in B_i
    dist = hamming_distance_many(sk.apply(x), sk.apply(near)[None, :])[0]
    gap_threshold = delta_gap(level_radius(alpha, level), alpha) * rows
    midpoint = (collision_rate(p, level_radius(alpha, level))
                + collision_rate(p, level_radius(alpha, level + 1))) / 2 * rows
    assert dist > gap_threshold  # gap-only: near point REJECTED (broken)
    assert dist <= midpoint + 3 * np.sqrt(rows)  # midpoint: accepted (±3σ)


def test_e4_verification_latency(benchmark, e4_report):
    wl = cached_planted(n=200, d=D, queries=4, max_flips=64, seed=4)
    fam = SketchFamily(D, 2.0, 10, 64, rng_tree=RngTree(3))
    benchmark(lambda: verify_lemma8(wl.database, fam, wl.queries[:2]))
