"""E2 / Fig. 2 — Theorem 3: Algorithm 2 uses O(k + ((log d)/k)^{c/k})
probes, reaching O(1) probes per round at k = Θ(log log d / log log log d).

Uses γ=2 (α=√2) so the level count exceeds the completion cut and the
shrinking-phase machinery actually runs.  Reports probes, probes/round,
and the phase/case structure; compares the fully-adaptive τ=2 extreme of
Algorithm 1 against Algorithm 2's one-probe-per-round regime (the paper's
"phase transition" discussion).

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import pytest

from benchmarks.conftest import cached_planted
from repro.analysis.reporting import print_table
from repro.analysis.tradeoff import evaluate_scheme, sweep_algorithm2
from repro.baselines.adaptive import FullyAdaptiveScheme
from repro.core.params import BaseParameters
from repro.lowerbound.bounds import phase_transition_k

KS = [16, 20, 24, 32]
D = 4096
GAMMA = 2.0


@pytest.fixture(scope="module")
def e2_rows(report_table):
    wl = cached_planted(n=250, d=D, queries=14, max_flips=200, seed=2)
    rows = []
    for summary in sweep_algorithm2(wl, GAMMA, ks=KS, c=3.0, c1=10.0, c2=10.0):
        rows.append(
            {
                "scheme": "Alg 2",
                "k": summary.extras["k"],
                "tau": summary.extras["tau"],
                "s": summary.extras["s"],
                "probes(mean)": round(summary.mean_probes, 1),
                "probes/round": summary.extras["probes_per_round"],
                "rounds(max)": summary.max_rounds,
                "success": round(summary.success_rate, 2),
                "violations": summary.extras.get("budget_violations", 0),
            }
        )
    base = BaseParameters(n=len(wl.database), d=D, gamma=GAMMA, c1=10.0)
    adaptive = FullyAdaptiveScheme(wl.database, base, seed=0)
    summary = evaluate_scheme(adaptive, wl, GAMMA)
    rows.append(
        {
            "scheme": "Alg 1 τ=2 (fully adaptive)",
            "k": adaptive.k,
            "tau": 2,
            "probes(mean)": round(summary.mean_probes, 1),
            "probes/round": round(summary.mean_probes / max(1.0, summary.mean_rounds), 2),
            "rounds(max)": summary.max_rounds,
            "success": round(summary.success_rate, 2),
        }
    )
    report_table(
        f"E2 (Fig. 2): Algorithm 2 at large k (d={D}, γ={GAMMA}); "
        f"phase-transition k ≈ {phase_transition_k(D)} in the paper's asymptotic scale",
        rows,
    )
    return rows


def test_e2_probes_per_round_order_one(e2_rows):
    """Toward the paper's 1-probe-per-round extreme.

    The true O(1)-probes/round regime is k = Θ(log log d / log log log d)
    *asymptotically*; at laptop scale the completion round (≤ max(3τ, k)
    probes) dominates the average.  The checkable shape facts: per-phase
    probe counts stay at the constant ⌈(τ−1)/s⌉ + 2, total probes stay
    under phases·per-phase + one completion round, and the fully-adaptive
    τ=2 extreme already runs at ~1 probe per round.
    """
    alg2 = [r for r in e2_rows if r["scheme"] == "Alg 2"]
    assert alg2, "no admissible k produced rows"
    for r in alg2:
        per_phase_cap = (r["tau"] - 1 + r["s"] - 1) // r["s"] + 2
        completion_cap = max(3 * r["tau"], r["k"])
        assert r["probes(mean)"] <= r["rounds(max)"] * per_phase_cap + completion_cap
    adaptive = [r for r in e2_rows if r["scheme"].startswith("Alg 1")]
    assert adaptive and adaptive[0]["probes/round"] <= 2.0


def test_e2_no_budget_violations(e2_rows):
    assert all(r.get("violations", 0) == 0 for r in e2_rows if r["scheme"] == "Alg 2")


def test_e2_success_floor(e2_rows):
    assert all(r["success"] >= 0.7 for r in e2_rows)


def test_e2_query_latency(benchmark, e2_rows):
    from repro.core.algorithm2 import LargeKScheme
    from repro.core.params import Algorithm2Params

    wl = cached_planted(n=250, d=D, queries=14, max_flips=200, seed=2)
    db = wl.database
    base = BaseParameters(n=len(db), d=D, gamma=GAMMA, c1=10.0, c2=10.0)
    scheme = LargeKScheme(db, Algorithm2Params(base, k=17), seed=0)
    scheme.query(wl.queries[0])  # warm caches
    benchmark(lambda: scheme.query(wl.queries[1]))
