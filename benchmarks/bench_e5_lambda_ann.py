"""E5 / Tab. 2 — Theorem 11: λ-ANNS with exactly 1 probe, success ≥ 3/4.

Planted near instances (distance ≤ λ) and far instances (uniform queries,
nearest ≫ γλ) measured separately; promise-gap inputs excluded from the
score exactly as the problem definition allows.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import numpy as np
import pytest

from benchmarks.conftest import cached_uniform_db
from repro.analysis.reporting import print_table
from repro.core.lambda_ann import OneProbeNearNeighborScheme
from repro.core.params import BaseParameters
from repro.hamming.sampling import flip_random_bits, random_points

D, N, GAMMA = 1024, 300, 4.0
LAMBDAS = [4.0, 8.0, 16.0, 32.0]


@pytest.fixture(scope="module")
def e5_rows(report_table):
    db = cached_uniform_db(N, D, seed=6)
    base = BaseParameters(n=N, d=D, gamma=GAMMA, c1=10.0)
    rng = np.random.default_rng(17)
    rows = []
    for lam in LAMBDAS:
        scheme = OneProbeNearNeighborScheme(db, base, lam=lam, seed=9)
        near_ok = near_total = far_ok = far_total = 0
        for t in range(40):
            if t % 2 == 0:
                q = flip_random_bits(rng, db.row(int(rng.integers(0, N))), int(lam // 2), D)
                res = scheme.query(q)
                near_total += 1
                near_ok += OneProbeNearNeighborScheme.decision_correct(db, q, lam, GAMMA, res)
            else:
                q = random_points(rng, 1, D)[0]
                res = scheme.query(q)
                far_total += 1
                far_ok += OneProbeNearNeighborScheme.decision_correct(db, q, lam, GAMMA, res)
            assert res.probes == 1 and res.rounds == 1
        rows.append(
            {
                "λ": lam,
                "level i": scheme.level,
                "near correct": f"{near_ok}/{near_total}",
                "far correct": f"{far_ok}/{far_total}",
                "overall": round((near_ok + far_ok) / (near_total + far_total), 3),
            }
        )
    report_table("E5 (Tab. 2): 1-probe λ-ANNS promise correctness", rows)
    return rows


def test_e5_success_floor(e5_rows):
    assert all(r["overall"] >= 0.75 for r in e5_rows)


def test_e5_single_probe_latency(benchmark, e5_rows):
    db = cached_uniform_db(N, D, seed=6)
    base = BaseParameters(n=N, d=D, gamma=GAMMA, c1=10.0)
    scheme = OneProbeNearNeighborScheme(db, base, lam=16.0, seed=9)
    rng = np.random.default_rng(1)
    q = flip_random_bits(rng, db.row(0), 8, D)
    scheme.query(q)  # warm
    benchmark(lambda: scheme.query(q))
