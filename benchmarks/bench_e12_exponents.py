"""E12 — the growth exponent of Theorem 2, fitted directly.

At fixed k, Algorithm 1's probe count is Θ(k (log d)^{1/k}); sweeping d
over ~6 octaves and fitting the log-log slope of probes against log₂ d
should recover the exponent 1/k.  This is the sharpest scalar test of the
claim: it is independent of all constant factors.

The fit uses the scheme's *worst-case probe budget* (the deterministic
per-parameter quantity `shrinks·(τ−1) + completion`), since per-query
measurements only differ from it by early-exit noise; a second table
confirms measured max probes track the budget.

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import pytest

from benchmarks.conftest import cached_planted
from repro.analysis.exponents import fit_probe_exponent
from repro.analysis.reporting import format_markdown_table
from repro.analysis.tradeoff import sweep_algorithm1
from repro.core.params import Algorithm1Params, BaseParameters

#: Dimension sweep for the *budget* fit: the worst-case probe budget is a
#: closed-form integer (no simulation), so the sweep can span 2^8..2^64 —
#: wide enough that integer-τ quantization averages out even at k = 3.
BUDGET_DIMS = [2**e for e in (8, 12, 16, 24, 32, 48, 64)]
KS = [1, 2, 3]


@pytest.fixture(scope="module")
def e12_fits(report_table):
    fits = []
    measured_rows = []
    for k in KS:
        # The per-round parallel width τ−1 is the pure (log d)^{1/k}
        # carrier: total probes = (#rounds)·(τ−1) with #rounds ≤ k, and
        # the round count's 1→k saturation at small d would otherwise
        # bias the fitted exponent upward.
        widths = []
        for d in BUDGET_DIMS:
            base = BaseParameters(n=200, d=d, gamma=4.0, c1=8.0)
            params = Algorithm1Params(base, k=k)
            widths.append(params.tau - 1)
        fits.append(fit_probe_exponent(k, BUDGET_DIMS, widths))
    # Spot-check that measured probes track the budget at two dims.
    for d in (1024, 8192):
        wl = cached_planted(n=200, d=d, queries=10, max_flips=d // 16, seed=12)
        for s in sweep_algorithm1(wl, 4.0, ks=KS, c1=8.0):
            base = BaseParameters(n=200, d=d, gamma=4.0, c1=8.0)
            params = Algorithm1Params(base, k=s.extras["k"])
            measured_rows.append(
                {
                    "d": d,
                    "k": s.extras["k"],
                    "probes(max)": s.max_probes,
                    "budget": params.probe_budget,
                    "within": s.max_probes <= params.probe_budget,
                }
            )
    report_table(
        "E12: fitted growth exponents of Algorithm 1 (probes ~ (log d)^e)",
        [f.as_row() for f in fits],
    )
    report_table("E12b: measured max probes vs worst-case budget", measured_rows)
    return fits


def test_e12_exponent_matches_one_over_k(e12_fits):
    """Fitted exponent within 0.15 of 1/k for k = 1..3."""
    for fit in e12_fits:
        assert fit.absolute_error <= 0.15, fit.as_row()


def test_e12_exponents_decrease_in_k(e12_fits):
    slopes = [f.slope for f in e12_fits]
    assert all(b < a for a, b in zip(slopes, slopes[1:]))


def test_e12_fit_latency(benchmark, e12_fits):
    benchmark(
        lambda: fit_probe_exponent(2, BUDGET_DIMS, [e + 10 for e in range(len(BUDGET_DIMS))])
    )
