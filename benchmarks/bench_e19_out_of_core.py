"""E19 — out-of-core serving: cold-start latency and resident-set size.

Not a paper claim: this experiment measures the format-v3 storage layer
(``repro.storage`` + ``load_mode="mmap"``) against the eager heap path
on a corpus whose working set exceeds the residency budget.

Measured:

* **Time-to-first-query (TTFQ)** — wall-clock from ``ShardedANNIndex.load``
  to the first answered query, with the snapshot's pages dropped from the
  OS cache first (``posix_fadvise(DONTNEED)``) so both paths start truly
  cold.  The heap path reads and validates every payload up front; the
  mmap path reads only manifests and pages in the probed cells on demand,
  so it must win by a wide margin (asserted ≥ 5x, median of
  ``TTFQ_REPEATS`` cold runs per mode to damp page-fault jitter).
* **Peak RSS under budget** — a fresh subprocess (``ru_maxrss`` is a
  lifetime peak, so the low-memory config cannot share a process with
  the heap run) loads the snapshot with ``memory_budget`` set to a third
  of the working set and sweeps every query.  Evictions must occur, the
  manager's resident bytes must respect the budget, and the process's
  RSS growth must stay well under the full working set.
* **Query latency under eviction pressure** — p50/p99 per-query latency
  while the budget forces shards to cycle, versus the all-resident heap
  baseline.

Criteria: the TTFQ speedup and the subprocess residency bounds are
asserted on every run.  Latency rows are informational (eviction churn
cost is hardware-dependent).

Catalog of all experiments: ``docs/BENCHMARKS.md``.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.persistence import MMAP_FORMAT_VERSION
from repro.service import ShardedANNIndex

# Large-corpus config: Algorithm 2 with c1=c2=64 makes the per-level
# accurate *and* coarse sketched databases (read only at probed levels)
# dwarf the packed words, so the eager heap load pays for two orders of
# magnitude more bytes than a near query actually touches.
N, D = 65536, 512
SHARDS = 6
QUERIES = 48
TTFQ_REPEATS = 3

INDEX_SPEC = IndexSpec(
    scheme="algorithm2",
    params={"gamma": 4.0, "c1": 64.0, "c2": 64.0},
    seed=2019,
)

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

# Runs in a fresh interpreter so ru_maxrss reflects ONLY the budgeted
# load: baseline is sampled after imports, before any payload is read.
_SUBPROCESS_SRC = """
import json, resource, sys
import numpy as np
from repro.service import ShardedANNIndex

path, budget, qfile = sys.argv[1], int(sys.argv[2]), sys.argv[3]
queries = np.load(qfile)
baseline_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
index = ShardedANNIndex.load(path, load_mode="mmap", memory_budget=budget)
results = index.query_batch(queries)
stats = index.residency_stats()
peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "baseline_kib": baseline_kib,
    "peak_kib": peak_kib,
    "answered": sum(r.answered for r in results),
    "stats": stats.to_dict(),
}))
"""


@pytest.fixture(scope="module")
def e19_snapshot(tmp_path_factory):
    gen = np.random.default_rng(2019)
    db = PackedPoints(random_points(gen, N, D), D)
    queries = np.vstack(
        [
            flip_random_bits(
                gen, db.row(int(gen.integers(0, N))), int(gen.integers(0, D // 20)), D
            )
            for _ in range(QUERIES)
        ]
    )
    index = ShardedANNIndex.build(db, INDEX_SPEC, shards=SHARDS, workers=1)
    path = tmp_path_factory.mktemp("e19") / "snapshot"
    index.save(path, format_version=MMAP_FORMAT_VERSION)
    qfile = tmp_path_factory.mktemp("e19q") / "queries.npy"
    np.save(qfile, queries)
    return path, queries, qfile


def _working_set_bytes(path) -> int:
    probe = ShardedANNIndex.load(path, load_mode="mmap")
    return sum(h.meta.nbytes for h in probe._handles)


def _drop_page_cache(path) -> bool:
    """Evict the snapshot's pages from the OS cache so the next load is a
    true cold start.  Returns False where fadvise is unavailable."""
    if not hasattr(os, "posix_fadvise"):  # pragma: no cover - non-POSIX
        return False
    os.sync()  # dirty pages cannot be dropped; flush writeback first
    # Two sweeps: a single DONTNEED pass can race writeback completion and
    # leave part of the snapshot warm, which halves the measured heap cost.
    for _ in range(2):
        for file in sorted(Path(path).rglob("*")):
            if not file.is_file():
                continue
            fd = os.open(file, os.O_RDONLY)
            try:
                os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
            finally:
                os.close(fd)
        time.sleep(0.05)
    return True


def _time_first_query(path, queries, **load_kwargs):
    start = time.perf_counter()
    index = ShardedANNIndex.load(path, **load_kwargs)
    index.query_batch(queries[:1])
    return index, time.perf_counter() - start


def _cold_ttfq(path, queries, **load_kwargs) -> float:
    # Median over repeats: a single half-warm run (fadvise raced with
    # writeback) or page-fault spike must not decide the comparison.
    samples = []
    for _ in range(TTFQ_REPEATS):
        _drop_page_cache(path)
        _, elapsed = _time_first_query(path, queries, **load_kwargs)
        samples.append(elapsed)
    return float(np.median(samples))


def _latency_quantiles(index, queries, repeats=3):
    lat = []
    for _ in range(repeats):
        for q in queries:
            start = time.perf_counter()
            index.query(q)
            lat.append(time.perf_counter() - start)
    lat = np.asarray(lat)
    return float(np.percentile(lat, 50) * 1e3), float(np.percentile(lat, 99) * 1e3)


def _run_budgeted_subprocess(path, budget, qfile):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SRC, str(path), str(budget), str(qfile)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


@pytest.fixture(scope="module")
def e19_rows(e19_snapshot, report_table):
    path, queries, qfile = e19_snapshot
    working_set = _working_set_bytes(path)
    budget = working_set // 3

    ttfq_heap = _cold_ttfq(path, queries)
    ttfq_mmap = _cold_ttfq(path, queries, load_mode="mmap")

    heap_index = ShardedANNIndex.load(path)
    p50_heap, p99_heap = _latency_quantiles(heap_index, queries, repeats=2)
    tight = ShardedANNIndex.load(path, load_mode="mmap", memory_budget=budget)
    p50_mmap, p99_mmap = _latency_quantiles(tight, queries, repeats=1)
    tight_stats = tight.residency_stats()

    child = _run_budgeted_subprocess(path, budget, qfile)
    rss_delta_mb = (child["peak_kib"] - child["baseline_kib"]) / 1024

    rows = [
        {
            "mode": "heap (eager)",
            "ttfq ms": round(ttfq_heap * 1e3, 1),
            "p50 ms": round(p50_heap, 3),
            "p99 ms": round(p99_heap, 3),
            "evictions": 0,
            "resident MiB": round(working_set / 2**20, 1),
        },
        {
            "mode": f"mmap (budget={budget / 2**20:.1f} MiB)",
            "ttfq ms": round(ttfq_mmap * 1e3, 1),
            "p50 ms": round(p50_mmap, 3),
            "p99 ms": round(p99_mmap, 3),
            "evictions": tight_stats.evictions,
            "resident MiB": round(tight_stats.resident_bytes / 2**20, 1),
        },
    ]
    report_table(
        f"E19: out-of-core cold start (n={N}, d={D}, S={SHARDS}, "
        f"working set={working_set / 2**20:.1f} MiB, "
        f"subprocess RSS delta={rss_delta_mb:.1f} MiB)",
        rows,
    )
    from artifacts import write_artifact

    write_artifact(
        "e19_out_of_core",
        {
            "ttfq_heap_s": ttfq_heap,
            "ttfq_mmap_s": ttfq_mmap,
            "ttfq_speedup": ttfq_heap / ttfq_mmap,
            "p50_heap_ms": p50_heap,
            "p99_heap_ms": p99_heap,
            "p50_mmap_ms": p50_mmap,
            "p99_mmap_ms": p99_mmap,
            "subprocess_rss_delta_mb": round(rss_delta_mb, 2),
            "subprocess_evictions": child["stats"]["evictions"],
        },
        extras={
            "n": N,
            "d": D,
            "shards": SHARDS,
            "working_set_bytes": working_set,
            "memory_budget_bytes": budget,
        },
        load_mode="mmap",
    )
    return {
        "rows": rows,
        "ttfq_heap": ttfq_heap,
        "ttfq_mmap": ttfq_mmap,
        "working_set": working_set,
        "budget": budget,
        "child": child,
        "rss_delta_mb": rss_delta_mb,
        "queries": queries,
        "path": path,
    }


@pytest.mark.skipif(
    not hasattr(os, "posix_fadvise"),
    reason="cannot drop the page cache for a cold-start measurement",
)
def test_e19_mmap_ttfq_at_least_5x_faster(e19_rows):
    speedup = e19_rows["ttfq_heap"] / e19_rows["ttfq_mmap"]
    assert speedup >= 5.0, (
        f"mmap TTFQ {e19_rows['ttfq_mmap'] * 1e3:.1f} ms vs heap "
        f"{e19_rows['ttfq_heap'] * 1e3:.1f} ms — only {speedup:.1f}x"
    )


def test_e19_budget_forces_evictions_without_changing_answers(e19_rows):
    path, queries = e19_rows["path"], e19_rows["queries"]
    heap = ShardedANNIndex.load(path)
    tight = ShardedANNIndex.load(
        path, load_mode="mmap", memory_budget=e19_rows["budget"]
    )
    expected = heap.query_batch(queries)
    actual = tight.query_batch(queries)
    for e, a in zip(expected, actual):
        assert (e.answer_index, e.probes, e.rounds) == (
            a.answer_index,
            a.probes,
            a.rounds,
        )
    assert tight.residency_stats().evictions > 0


def test_e19_subprocess_rss_stays_under_working_set(e19_rows):
    child = e19_rows["child"]
    stats = child["stats"]
    budget_mb = e19_rows["budget"] / 2**20
    working_set_mb = e19_rows["working_set"] / 2**20
    assert child["answered"] == QUERIES
    assert stats["evictions"] > 0, "budget below working set must evict"
    assert stats["resident_bytes"] <= e19_rows["budget"]
    # RSS growth tracks the budget, not the corpus: allow allocator and
    # page-cache slack, but the full working set must never be resident.
    assert e19_rows["rss_delta_mb"] < working_set_mb * 0.8, (
        f"RSS grew {e19_rows['rss_delta_mb']:.1f} MiB with a "
        f"{budget_mb:.1f} MiB budget (working set {working_set_mb:.1f} MiB)"
    )
