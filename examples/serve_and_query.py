#!/usr/bin/env python
"""Online serving: concurrent queries through the micro-batching service.

Starts an in-process :class:`~repro.service.server.AsyncANNService` over
a small index, fires a wave of concurrent single-query requests at it
(each ``await service.query(x)`` is one request, as over the wire), and
prints the metrics snapshot: the service coalesced the wave into a few
micro-batches, yet every request's answer and probe/round accounting is
identical to a sequential ``index.query`` loop.

The same service speaks newline-delimited JSON over TCP::

    python -m repro build --scheme algorithm1 --out /tmp/idx
    python -m repro serve --index /tmp/idx --port 7878
    # then, from anywhere:
    #   from repro import ServiceClient
    #   with ServiceClient(port=7878) as client:
    #       client.query(bits); client.stats(); client.shutdown()

Architecture, protocol reference, and tuning guide: docs/SERVING.md.

Run:  python examples/serve_and_query.py
"""

import asyncio

import numpy as np

from repro import ANNIndex, AsyncANNService, IndexSpec, PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points


async def main() -> None:
    rng = np.random.default_rng(2016)
    n, d, requests = 400, 1024, 128

    print(f"Building index: n={n} points in {{0,1}}^{d}")
    database = PackedPoints(random_points(rng, n, d), d)
    queries = np.vstack(
        [
            flip_random_bits(rng, database.row(int(rng.integers(0, n))), int(rng.integers(0, 50)), d)
            for _ in range(requests)
        ]
    )
    spec = IndexSpec(scheme="algorithm1", params={"rounds": 3, "c1": 8.0}, seed=7)
    index = ANNIndex.from_spec(database, spec)

    print(f"Sequential reference: {requests} index.query calls...")
    reference = [index.query_packed(q) for q in queries]

    print(f"Serving the same {requests} queries as concurrent requests...")
    async with AsyncANNService(index, max_batch=64, max_wait_ms=2.0) as service:
        results = await asyncio.gather(*(service.query(q) for q in queries))
        metrics = service.metrics()

    identical = all(
        s.answer_index == r.answer_index
        and s.probes == r.probes
        and s.probes_per_round == r.probes_per_round
        for s, r in zip(reference, results)
    )
    snapshot = metrics.as_dict()
    print("\n  metrics snapshot (the 'stats' protocol verb):")
    for key in ("requests", "batches", "mean_batch", "qps",
                "p50_ms", "p95_ms", "p99_ms", "probes_per_query"):
        print(f"    {key:>18}: {snapshot[key]}")
    print(f"\n  {requests} requests coalesced into {metrics.batches} micro-batches "
          f"(mean occupancy {metrics.mean_batch:.1f})")
    print(f"  results identical to the sequential loop: {identical}")


if __name__ == "__main__":
    asyncio.run(main())
