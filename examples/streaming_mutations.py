"""Streaming mutations: insert, delete, compact — and the rebuild oracle.

Builds an index, mutates it while querying, and demonstrates the
headline invariant of the mutation layer: after a compaction the index
answers **bitwise-identically** to a from-scratch build on the surviving
rows under the generation seed ``RngTree(seed).child("generation", g)``.

Run:  python examples/streaming_mutations.py
"""

import numpy as np

from repro import ANNIndex, IndexSpec, PackedPoints
from repro.core.mutable import generation_seed
from repro.hamming.sampling import random_points

rng = np.random.default_rng(2016)
n, d = 200, 512
database = PackedPoints(random_points(rng, n, d), d)

spec = IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=7)
index = ANNIndex.from_spec(database, spec)
queries = random_points(rng, 8, d)

# --- streaming writes -----------------------------------------------------
fresh = random_points(rng, 5, d)
ids = index.insert(fresh)  # searchable immediately (exact memtable scan)
print(f"inserted ids {ids}; live rows: {len(index)}")

hit = index.query_packed(fresh[0])
print(f"query for an inserted point -> id {hit.answer_index} "
      f"(source: {hit.meta['mutable']['source']})")

victim = index.query_packed(queries[0]).answer_index
index.delete([victim])  # tombstoned: can never surface again
print(f"deleted id {victim}; new answer: "
      f"{index.query_packed(queries[0]).answer_index}")

# --- amortized compaction + the rebuild-equivalence oracle ----------------
generation = index.compact()
survivors = index.database  # renumbered 0..live-1
oracle = ANNIndex.from_spec(
    survivors, spec.replace(seed=generation_seed(spec.seed, generation))
)
for q in queries:
    a, b = index.query_packed(q), oracle.query_packed(q)
    assert (a.answer_index, a.probes, a.rounds, a.probes_per_round) == (
        b.answer_index, b.probes, b.rounds, b.probes_per_round
    )
print(f"generation {generation}: compacted index is bitwise-identical to a "
      f"fresh build on the {len(index)} survivors ✓")
