#!/usr/bin/env python
"""Quickstart: build a k-round ANN index from an IndexSpec and inspect
probe accounting.

Reproduces the basic workflow of the paper's model: a database of points
in {0,1}^d is preprocessed into polynomial-size tables; each query runs as
k rounds of parallel cell-probes and returns a γ-approximate nearest
neighbor with exact probe/round accounting.

Construction goes through the typed spec surface: an
:class:`repro.IndexSpec` names a registered scheme (see
``python -m repro schemes``) plus its parameters, and
``ANNIndex.from_spec`` builds it.  The spec round-trips through
``to_dict``/``from_dict`` so experiments can be reproduced exactly.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ANNIndex, IndexSpec, PackedPoints, available_schemes
from repro.hamming.sampling import flip_random_bits, random_points


def main() -> None:
    rng = np.random.default_rng(2016)
    n, d, gamma, rounds = 500, 1024, 4.0, 3

    print(f"Building database: n={n} points in {{0,1}}^{d}")
    database = PackedPoints(random_points(rng, n, d), d)

    print(f"Building index: γ={gamma}, k={rounds} rounds (Algorithm 1)")
    spec = IndexSpec(
        scheme="algorithm1",
        params={"gamma": gamma, "rounds": rounds, "c1": 8.0},
        seed=7,
    )
    index = ANNIndex.from_spec(database, spec)
    print(f"  spec: {spec.to_dict()}  (registered schemes: {', '.join(available_schemes())})")
    report = index.size_report()
    print(f"  logical table cells: {report.table_cells:.3e} "
          f"(= n^{report.cells_log_n(n):.1f}), word size {report.word_bits} bits")
    print(f"  {report.notes}\n")

    print("Querying 10 planted near-neighbors:")
    successes = 0
    for i in range(10):
        base = database.row(int(rng.integers(0, n)))
        query = flip_random_bits(rng, base, int(rng.integers(0, 40)), d)
        result = index.query_packed(query)
        ratio = result.ratio(database, query)
        ok = ratio is not None and ratio <= gamma
        successes += ok
        print(f"  query {i}: probes={result.probes:2d} rounds={result.rounds} "
              f"per-round={result.probes_per_round} ratio={ratio:.2f} "
              f"path={result.meta.get('path')} {'OK' if ok else 'MISS'}")
    print(f"\nγ-approximation success: {successes}/10 "
          f"(paper guarantees ≥ 2/3 per query; amplify with "
          f"IndexSpec.preset('high-recall') or spec.replace(boost=...))")

    # Batched querying: one call answers many queries with the adaptive
    # rounds executed for the whole batch at once; results (answers and
    # probe/round accounting) are identical to a sequential query loop.
    # See examples/batch_queries.py for a throughput comparison.
    batch = np.vstack([
        flip_random_bits(rng, database.row(int(rng.integers(0, n))), 20, d)
        for _ in range(32)
    ])
    results = index.query_batch(batch)
    stats = index.last_batch_stats
    print(f"\nquery_batch over {len(results)} queries: "
          f"{stats.sweeps} lockstep sweeps, {stats.total_probes} probes, "
          f"{stats.prefetched_cells} cells prefetched in batched kernels")

    # The same surface serves every registered scheme — e.g. the exact
    # linear-scan baseline, batched through the identical engine:
    exact = ANNIndex.from_spec(database, IndexSpec(scheme="linear-scan"))
    exact_results = exact.query_batch(batch[:4])
    print(f"linear-scan baseline on 4 queries: "
          f"probes/query={exact_results[0].probes}, "
          f"exact answers={[r.answer_index for r in exact_results]}")


if __name__ == "__main__":
    main()
