#!/usr/bin/env python
"""The round/probe tradeoff (Theorems 2, 3, 4) on one database.

Sweeps the round budget k for Algorithm 1 and Algorithm 2, measures total
probes per query, and prints them next to the analytic envelopes:

    upper (Alg 1):  k (log d)^{1/k}
    upper (Alg 2):  k + ((log d)/k)^{c/k}
    lower bound:    (1/k)(log_γ d)^{1/k}

Run:  python examples/adaptivity_tradeoff.py
"""

from repro.analysis.reporting import print_table
from repro.analysis.tradeoff import sweep_algorithm1, sweep_algorithm2
from repro.lowerbound.bounds import lb_tradeoff, ub_algorithm1
from repro.workloads.spec import WorkloadSpec, make_workload


def main() -> None:
    gamma = 4.0
    wl = make_workload(
        "planted", WorkloadSpec(n=400, d=4096, num_queries=24, seed=5), max_flips=200
    )
    print(f"Workload: {wl.description}; n={len(wl.database)}, d={wl.database.d}, γ={gamma}")

    rows = []
    for summary in sweep_algorithm1(wl, gamma, ks=[1, 2, 3, 4, 6, 8], c1=8.0):
        k = summary.extras["k"]
        rows.append(
            {
                "k": k,
                "scheme": "Alg 1",
                "τ": summary.extras["tau"],
                "probes(mean)": round(summary.mean_probes, 1),
                "probes(max)": summary.max_probes,
                "rounds(max)": summary.max_rounds,
                "envelope k·(log d)^{1/k}": round(ub_algorithm1(k, wl.database.d), 1),
                "lower bound (1/k)(log_γ d)^{1/k}": round(
                    lb_tradeoff(k, wl.database.d, gamma), 2
                ),
                "success": round(summary.success_rate, 2),
            }
        )
    for summary in sweep_algorithm2(wl, gamma, ks=[16, 24, 32], c=3.0, c1=8.0, c2=8.0):
        rows.append(
            {
                "k": summary.extras["k"],
                "scheme": "Alg 2",
                "τ": summary.extras["tau"],
                "probes(mean)": round(summary.mean_probes, 1),
                "probes(max)": summary.max_probes,
                "rounds(max)": summary.max_rounds,
                "envelope k·(log d)^{1/k}": summary.extras["envelope"],
                "success": round(summary.success_rate, 2),
            }
        )
    print_table("Adaptivity/probe tradeoff", rows)
    print(
        "Shape check: Alg 1's probes fall steeply from k=1 (≈ log d) and "
        "flatten; Alg 2 takes over for large k where its k + o(k) envelope wins."
    )


if __name__ == "__main__":
    main()
