#!/usr/bin/env python
"""Distributed serving: a replicated cluster surviving a replica crash.

Builds a small 2-shard index, snapshots it, and spawns a real cluster —
2 replicas of each shard as ``repro shard-serve`` subprocesses behind a
``repro route`` router — via :class:`repro.service.harness.ClusterHarness`
(the same subprocess harness the tests and benchmark E18 use). Then it
walks the whole fault story:

1. query through the router and check every answer (and its probe/round
   accounting) bitwise against the in-process ``ShardedANNIndex``;
2. insert and delete through the router — the writes replicate to both
   replicas of the owning shard through the per-shard write log;
3. SIGKILL one replica: reads fail over to its sibling, answers do not
   change by a single bit;
4. write while the replica is down, restart it from its (now stale)
   snapshot, and watch the router replay the missed writes and mark it
   alive again;
5. kill the *sibling*, so the caught-up replica serves its shard alone
   — and still answers bitwise-identically.

Topology, consistency model, and failure matrix: docs/DISTRIBUTED.md.

Run:  python examples/cluster_demo.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import IndexSpec, PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.service.harness import ClusterHarness
from repro.service.sharded import ShardedANNIndex


def check(client, oracle, queries) -> None:
    """Every routed answer must equal the in-process oracle, bitwise."""
    for bits in queries:
        remote = client.query(bits)
        local = oracle.query(np.asarray(bits, dtype=np.uint8))
        assert remote.answer_index == local.answer_index
        assert remote.probes == local.probes
        assert remote.probes_per_round == local.probes_per_round
    print(f"    {len(queries)} queries: answers + accounting identical")


def main() -> None:
    rng = np.random.default_rng(2016)
    n, d = 256, 512

    print(f"Building 2-shard index: n={n} points in {{0,1}}^{d}")
    database = PackedPoints(random_points(rng, n, d), d)
    spec = IndexSpec(scheme="algorithm1", params={"rounds": 2, "c1": 8.0}, seed=7)
    oracle = ShardedANNIndex.build(database, spec, shards=2)
    snapshot = oracle.save(Path(tempfile.mkdtemp(prefix="repro-demo-")) / "snap")

    queries = [
        [
            int(b)
            for b in np.unpackbits(
                flip_random_bits(
                    rng, database.row(int(rng.integers(0, n))), int(rng.integers(0, 20)), d
                ).view(np.uint8),
                bitorder="little",
            )[:d]
        ]
        for _ in range(12)
    ]

    print("Spawning 2 shards x 2 replicas + router (5 processes)...")
    with ClusterHarness(snapshot, replicas=2) as cluster:
        with cluster.connect() as client:
            print("  [1] healthy cluster vs in-process oracle:")
            check(client, oracle, queries)

            print("  [2] replicated writes:")
            points = rng.integers(0, 2, size=(3, d), dtype=np.uint8)
            ids = client.insert(points.tolist())
            assert ids == oracle.insert(points)
            deleted = client.delete(ids[:1])
            assert deleted == oracle.delete(ids[:1]) == 1
            print(f"    inserted ids {ids} and deleted {ids[:1]} on both replicas")

            print("  [3] SIGKILL replica (0,0) — reads fail over:")
            cluster.kill_replica(0, 0)
            check(client, oracle, queries)

            print("  [4] write while it is down, restart, catch up:")
            points = rng.integers(0, 2, size=(2, d), dtype=np.uint8)
            assert client.insert(points.tolist()) == oracle.insert(points)
            cluster.restart_replica(0, 0)
            recovery = cluster.wait_replica_alive(0, 0)
            print(f"    router replayed the missed writes in {recovery:.2f}s")

            print("  [5] kill sibling (0,1) — the caught-up replica serves alone:")
            cluster.kill_replica(0, 1)
            check(client, oracle, queries)

            stats = client.stats()
            print("\n  router counters (the 'stats' protocol verb):")
            for key in ("queries", "inserts", "deletes", "retries",
                        "dead_transitions", "catch_ups", "replayed_writes"):
                print(f"    {key:>18}: {stats[key]}")
    print("\nCluster answers stayed bitwise-identical through crash, "
          "failover, and catch-up.")


if __name__ == "__main__":
    main()
