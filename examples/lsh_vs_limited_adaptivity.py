#!/usr/bin/env python
"""The paper's introduction, measured: LSH vs Algorithm 1 (k=1) vs
linear scan vs the fully-adaptive extreme.

LSH is non-adaptive (1 round) but pays O~(n^ρ) probes per radius on
O~(n^{1+ρ})-cell tables; Algorithm 1 at k=1 is also non-adaptive yet needs
only O(log d) probes — at the price of a larger polynomial table.  The
fully adaptive τ=2 extreme gets O(log log d) probes.

Run:  python examples/lsh_vs_limited_adaptivity.py
"""

from repro import IndexSpec, build_scheme
from repro.analysis.reporting import print_table
from repro.analysis.tradeoff import evaluate_scheme
from repro.workloads.spec import WorkloadSpec, make_workload


def main() -> None:
    gamma = 4.0
    wl = make_workload(
        "planted", WorkloadSpec(n=300, d=1024, num_queries=20, seed=9), max_flips=60
    )
    db = wl.database

    # Every contender comes out of the scheme registry by name.
    contenders = [
        ("LSH (non-adaptive)", "lsh", {"gamma": gamma, "table_boost": 1.5}),
        ("Alg 1, k=1 (non-adaptive)", "algorithm1", {"gamma": gamma, "rounds": 1, "c1": 8.0}),
        ("Alg 1, k=3", "algorithm1", {"gamma": gamma, "rounds": 3, "c1": 8.0}),
        ("fully adaptive (τ=2)", "fully-adaptive", {"gamma": gamma, "c1": 8.0}),
        ("linear scan (exact)", "linear-scan", {}),
    ]
    rows = []
    for label, name, params in contenders:
        scheme = build_scheme(db, IndexSpec(scheme=name, params=params, seed=4))
        summary = evaluate_scheme(scheme, wl, gamma)
        rows.append(
            {
                "scheme": label,
                "probes(mean)": round(summary.mean_probes, 1),
                "rounds(max)": summary.max_rounds,
                "success": round(summary.success_rate, 2),
                "cells": f"{summary.table_cells:.2e}",
                "cells=n^c": round(
                    scheme.size_report().cells_log_n(len(db)), 1
                ),
            }
        )
    print_table(
        "LSH vs limited adaptivity (n=300, d=1024, γ=4)", rows,
    )
    print(
        "The paper's contrast: both LSH and Alg 1 (k=1) use ONE round, but the "
        "polynomial-size tables cut probes from Θ(n^ρ·levels) to Θ(log d); more "
        "rounds push toward the Θ(log log d) fully-adaptive regime."
    )


if __name__ == "__main__":
    main()
