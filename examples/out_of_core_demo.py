"""Out-of-core serving: zero-copy snapshots under a memory budget.

Demonstrates the format-v3 storage layer (:mod:`repro.storage`):

1. build a sharded index and save it with ``format_version=3`` — every
   array payload becomes its own raw ``.npy`` file the OS can map;
2. load it with ``load_mode="mmap"``: no shard attaches until a query
   needs it, and attached shards hold memory-mapped payloads that page
   in lazily;
3. add a ``memory_budget`` that holds roughly one shard, sweep queries
   through, and watch the residency manager evict least-recently-queried
   shards while the answers stay bitwise-identical to the eager heap
   load;
4. write one point — the touched shard is promoted to heap (copy-on-
   write) and becomes ineligible for eviction until saved again.

Run: ``PYTHONPATH=src python examples/out_of_core_demo.py``
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import IndexSpec, PackedPoints, ShardedANNIndex
from repro.hamming.sampling import flip_random_bits, random_points


def main() -> None:
    rng = np.random.default_rng(20160613)
    n, d = 256, 512
    db = PackedPoints(random_points(rng, n, d), d)
    queries = np.vstack(
        [
            flip_random_bits(rng, db.row(int(rng.integers(0, n))), 12, d)
            for _ in range(24)
        ]
    )

    spec = IndexSpec(scheme="algorithm1", params={"rounds": 2, "c1": 8.0}, seed=3)
    sharded = ShardedANNIndex.build(db, spec, shards=4)

    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "v3"
        sharded.save(snapshot, format_version=3)
        payloads = sorted(p for p in snapshot.rglob("*.npy"))
        print(f"format-v3 snapshot: {len(payloads)} raw .npy payloads")

        heap = ShardedANNIndex.load(snapshot)  # eager: everything resident
        expected = heap.query_batch(queries)

        lazy = ShardedANNIndex.load(snapshot, load_mode="mmap")
        before = lazy.residency_stats()
        print(f"mmap load attaches nothing: {before.attached}/{before.shards}")
        assert before.attached == 0

        # A budget of about one shard forces the manager to cycle shards
        # in and out as the fan-out sweeps them.
        budget = lazy._handles[0].meta.nbytes + 1
        tight = ShardedANNIndex.load(
            snapshot, load_mode="mmap", memory_budget=budget
        )
        actual = tight.query_batch(queries)
        identical = all(
            e.answer_index == a.answer_index
            and e.probes == a.probes
            and e.rounds == a.rounds
            for e, a in zip(expected, actual)
        )
        stats = tight.residency_stats()
        print(
            f"budget={budget} B: {stats.evictions} evictions, "
            f"{stats.misses} cold attaches, "
            f"{stats.resident_bytes} B resident, "
            f"answers bitwise-identical: {identical}"
        )
        assert identical and stats.evictions > 0
        assert stats.resident_bytes <= budget

        # Writes promote the touched shard to heap and mark it dirty, so
        # eviction can never drop unsaved mutations.
        tight.insert(db.words[:1])
        after = tight.residency_stats()
        print(
            f"after one insert: promotions={after.promotions}, "
            f"dirty shards stay attached"
        )
        assert after.promotions >= 1


if __name__ == "__main__":
    main()
