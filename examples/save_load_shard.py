"""Persistence + sharding: save an index, load it back, shard it.

Demonstrates the serving substrate added on top of the batched engine:

1. build an index from a spec and snapshot it to a directory
   (``manifest.json`` + ``database.npz`` + ``arrays.npz``);
2. load it back and verify the answers are bitwise-identical;
3. build a 4-shard :class:`~repro.service.sharded.ShardedANNIndex`,
   query through the fan-out/merge path, and round-trip it through its
   own snapshot.

Run: ``PYTHONPATH=src python examples/save_load_shard.py``
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ANNIndex, IndexSpec, PackedPoints, ShardedANNIndex
from repro.hamming.sampling import flip_random_bits, random_points


def main() -> None:
    rng = np.random.default_rng(42)
    n, d = 400, 1024
    db = PackedPoints(random_points(rng, n, d), d)
    queries = np.vstack(
        [
            flip_random_bits(rng, db.row(int(rng.integers(0, n))), 25, d)
            for _ in range(32)
        ]
    )

    spec = IndexSpec(scheme="algorithm1", params={"rounds": 3, "c1": 8.0}, seed=7)
    index = ANNIndex.from_spec(db, spec)
    before = index.query_batch(queries)

    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "index"
        index.save(snapshot)
        files = sorted(p.name for p in snapshot.iterdir())
        print(f"saved snapshot: {files}")

        loaded = ANNIndex.load(snapshot)
        after = loaded.query_batch(queries)
        identical = all(
            b.answer_index == a.answer_index
            and b.probes == a.probes
            and b.rounds == a.rounds
            for b, a in zip(before, after)
        )
        print(f"loaded index answers bitwise-identically: {identical}")
        assert identical

        sharded = ShardedANNIndex.build(db, spec, shards=4)
        merged = sharded.query_batch(queries)
        stats = sharded.last_batch_stats
        print(
            f"sharded x{sharded.num_shards}: answered "
            f"{sum(r.answered for r in merged)}/{len(merged)}, "
            f"probes={stats.total_probes} (summed across shards), "
            f"sweeps={stats.sweeps} (max across shards)"
        )

        shard_snapshot = Path(tmp) / "sharded"
        sharded.save(shard_snapshot)
        reloaded = ShardedANNIndex.load(shard_snapshot)
        again = reloaded.query_batch(queries)
        identical = all(
            m.answer_index == a.answer_index and m.probes == a.probes
            for m, a in zip(merged, again)
        )
        print(f"sharded snapshot round-trips: {identical}")
        assert identical


if __name__ == "__main__":
    main()
