#!/usr/bin/env python
"""The lower-bound machinery, end to end (Section 4).

1. Build a γ-separated Hamming-ball tree (Lemma 16) and verify its five
   invariants programmatically.
2. Map a longest-prefix-match instance into ANNS (Lemma 14), solve it with
   the paper's own Algorithm 1, and recover the LPM answers.
3. Convert a real query trace into its ⟨A, B, 2k⟩ communication protocol
   (Proposition 18).
4. Replay the round-elimination ledger (Claim 25) at asymptotic scale and
   read off the implied Ω((1/k)(log_γ d)^{1/k}) bound.

Run:  python examples/lpm_reduction_demo.py
"""

import numpy as np

from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.params import Algorithm1Params, BaseParameters
from repro.lowerbound.balltree import SeparatedBallTree
from repro.lowerbound.lpm import LPMTrie, random_lpm_instance
from repro.lowerbound.protocol import trace_to_protocol
from repro.lowerbound.reduction import LPMToANNSReduction
from repro.lowerbound.roundelim import RoundEliminationLedger


def main() -> None:
    rng = np.random.default_rng(2016)

    print("== 1. γ-separated ball tree (Lemma 16) ==")
    tree = SeparatedBallTree(d=2048, gamma=2.0, fanout=4, depth=2, rng=rng)
    print(f"   d=2048, γ=2, fanout=4, depth=2 → {tree.num_nodes} balls")
    print(f"   invariants: {tree.verify()}")
    print(f"   separation margin: {tree.verification_margin():.2f}× required\n")

    print("== 2. LPM → ANNS reduction (Lemma 14) ==")
    inst, queries = random_lpm_instance(rng, m=2, n=12, sigma=4, skew=0.8)
    reduction = LPMToANNSReduction(inst, tree)
    db = reduction.database
    base = BaseParameters(n=len(db), d=db.d, gamma=2.0, c1=10.0)
    scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=3), seed=0)

    def ann_solver(database, x):
        res = scheme.query(x)
        return res.answer_packed

    correct = sum(reduction.solve_with(ann_solver, q).correct for q in queries)
    print(f"   Algorithm 1 on the mapped instance recovers the LPM answer "
          f"for {correct}/{len(queries)} queries")
    print(f"   γ-gap of first instance: {reduction.gamma_gap(queries[0]):.1f} "
          f"(> γ = 2 certifies unconfusability)\n")

    print("== 3. Scheme → protocol (Proposition 18) ==")
    res = scheme.query(reduction.map_query(queries[0]))
    report = scheme.size_report()
    shape = trace_to_protocol(res.accountant, report.table_cells, report.word_bits)
    print(f"   {res.rounds} probe rounds → {shape.communication_rounds} comm rounds; "
          f"Alice {shape.alice_bits:.0f} bits, Bob {shape.bob_bits:.0f} bits")
    for row in shape.rows():
        print(f"     round {row['round']}: a={row['alice_bits']:.0f}, b={row['bob_bits']:.0f}")
    print()

    print("== 4. Round-elimination ledger (Theorem 24) ==")
    print("   (asymptotic scale: log2 d = 10^8, log2 n = (log2 d)^2)")
    for k in (1, 2, 3):
        ledger = RoundEliminationLedger(gamma=3.0, k=k, log2_n=1e16, log2_d=1e8)
        t_star, result = ledger.implied_lower_bound()
        print(f"   k={k}: m={ledger.m}, ξ=(1/k)m^(1/k)={result.xi:.2f}, "
              f"implied bound t* = {t_star:.3f}  (t*/ξ = {t_star/result.xi:.3g})")
    print("   → t* scales as Θ(ξ): the Ω((1/k)(log_γ d)^{1/k}) tradeoff.")


if __name__ == "__main__":
    main()
