#!/usr/bin/env python
"""Batched querying: serve many queries per round sweep.

Builds one index, answers a batch of queries through
``ANNIndex.query_batch`` (the ``repro.service.BatchQueryEngine``), and
checks the results against a sequential ``query`` loop: answers and
per-query probe/round accounting are identical — batching changes the
wall clock, never the cell-probe semantics.

Run:  python examples/batch_queries.py
"""

import time

import numpy as np

from repro import ANNIndex, IndexSpec, PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points


def main() -> None:
    rng = np.random.default_rng(2016)
    n, d, gamma, rounds, batch = 400, 1024, 4.0, 3, 256

    print(f"Building database: n={n} points in {{0,1}}^{d}")
    database = PackedPoints(random_points(rng, n, d), d)
    queries = np.vstack(
        [
            flip_random_bits(rng, database.row(int(rng.integers(0, n))), int(rng.integers(0, 50)), d)
            for _ in range(batch)
        ]
    )
    spec = IndexSpec(
        scheme="algorithm1",
        params={"gamma": gamma, "rounds": rounds, "c1": 8.0},
        seed=7,
    )

    def build() -> ANNIndex:
        index = ANNIndex.from_spec(database, spec)
        # Warm the one-time preprocessing so the comparison is marginal cost.
        for i in range(index.scheme.params.base.levels + 1):
            index.scheme.level_sketches.accurate_db(i)
        return index

    seq_index, bat_index = build(), build()

    print(f"Sequential loop over {batch} queries...")
    t0 = time.perf_counter()
    seq_results = [seq_index.query_packed(q) for q in queries]
    seq_secs = time.perf_counter() - t0

    print(f"One query_batch call over the same {batch} queries...")
    t0 = time.perf_counter()
    bat_results = bat_index.query_batch(queries)
    bat_secs = time.perf_counter() - t0

    identical = all(
        s.answer_index == b.answer_index
        and s.probes == b.probes
        and s.probes_per_round == b.probes_per_round
        for s, b in zip(seq_results, bat_results)
    )
    stats = bat_index.last_batch_stats
    print(f"\n  sequential: {batch / seq_secs:8.0f} queries/sec")
    print(f"  batched:    {batch / bat_secs:8.0f} queries/sec "
          f"({seq_secs / bat_secs:.1f}x)")
    print(f"  engine:     {stats.sweeps} lockstep sweeps, "
          f"{stats.prefetched_cells} cells prefetched, "
          f"{stats.total_probes} probes charged")
    print(f"  results identical to the sequential loop: {identical}")


if __name__ == "__main__":
    main()
