#!/usr/bin/env python
"""The 1-probe λ-near-neighbor scheme (Theorem 11).

Demonstrates the paper's Section 3.3 point: the *decision/near* version of
the problem collapses to a single cell-probe on a polynomial-size table —
which is exactly why the lower bound must be proved for the *search*
problem via LPM instead.

Run:  python examples/lambda_near_neighbor.py
"""

import numpy as np

from repro import BaseParameters, OneProbeNearNeighborScheme, PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points


def main() -> None:
    rng = np.random.default_rng(11)
    n, d, gamma, lam = 400, 1024, 4.0, 16.0
    database = PackedPoints(random_points(rng, n, d), d)
    base = BaseParameters(n=n, d=d, gamma=gamma, c1=10.0)
    scheme = OneProbeNearNeighborScheme(database, base, lam=lam, seed=3)
    print(f"λ-ANNS: λ={lam}, γ={gamma}; probing level i=⌈log_α λ⌉={scheme.level}; "
          f"YES answers guaranteed within α^(i+1)={scheme.guarantee_radius():.0f} ≤ γλ={gamma*lam:.0f}")

    trials, correct = 60, 0
    yes = no = 0
    for t in range(trials):
        if t % 2 == 0:  # planted near instance (distance ≤ λ/2)
            anchor = database.row(int(rng.integers(0, n)))
            query = flip_random_bits(rng, anchor, int(lam // 2), d)
        else:  # uniform query: nearest neighbor ≈ d/2 ≫ γλ
            query = random_points(rng, 1, d)[0]
        result = scheme.query(query)
        assert result.probes == 1 and result.rounds == 1
        yes += result.answered
        no += not result.answered
        correct += OneProbeNearNeighborScheme.decision_correct(
            database, query, lam, gamma, result
        )
    print(f"decisions: YES={yes} NO={no}; promise-correct {correct}/{trials} "
          f"(paper: ≥ 3/4, single probe, table size n^O(1))")


if __name__ == "__main__":
    main()
