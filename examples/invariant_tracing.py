#!/usr/bin/env python
"""Looking inside a query: invariant tracing and round serialization.

Two instrumentation features of the simulator:

1. ``check_invariants=True`` attaches an out-of-band oracle that evaluates
   the paper's loop invariant ``C_l = ∅ ∧ C_u ≠ ∅`` after every threshold
   update (charging no probes).  Violations correspond exactly to the
   ≤ 1/4-probability failures of Lemma 8's assumptions.
2. ``one_probe_per_round=True`` serializes Algorithm 2 into singleton
   rounds — the paper's remark that at the transition k the scheme runs
   with one probe per round — with provably identical answers.

Run:  python examples/invariant_tracing.py
"""

import numpy as np

from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.algorithm2 import LargeKScheme
from repro.core.params import Algorithm1Params, Algorithm2Params, BaseParameters
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points


def main() -> None:
    rng = np.random.default_rng(4)
    n, d = 250, 2048
    db = PackedPoints(random_points(rng, n, d), d)

    print("== Invariant tracing (Algorithm 1, k=3) ==")
    base = BaseParameters(n=n, d=d, gamma=4.0, c1=10.0)
    scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=3), seed=5,
                                check_invariants=True)
    checked = violated = 0
    for t in range(12):
        q = flip_random_bits(rng, db.row(int(rng.integers(0, n))), int(rng.integers(0, 100)), d)
        res = scheme.query(q)
        inv = res.meta.get("invariants")
        if inv:
            checked += inv["checked"]
            violated += inv["violations"]
            if t < 4:
                print(f"  query {t}: probes={res.probes} per-round={res.probes_per_round} "
                      f"invariant checks={inv['checked']} violations={inv['violations']}")
    print(f"  total: {checked} invariant evaluations, {violated} violations "
          f"(violations ⇔ Lemma 8 assumption failures, prob ≤ 1/4)\n")

    print("== Round serialization (Algorithm 2, k=17, γ=2) ==")
    base2 = BaseParameters(n=n, d=d, gamma=2.0, c1=10.0, c2=10.0)
    params2 = Algorithm2Params(base2, k=17)
    parallel = LargeKScheme(db, params2, seed=5)
    serialized = LargeKScheme(db, params2, seed=5, one_probe_per_round=True)
    q = flip_random_bits(rng, db.row(0), 80, d)
    rp, rs = parallel.query(q), serialized.query(q)
    print(f"  parallel:   answer={rp.answer_index} probes={rp.probes} rounds={rp.rounds} "
          f"per-round={rp.probes_per_round}")
    print(f"  serialized: answer={rs.answer_index} probes={rs.probes} rounds={rs.rounds} "
          f"(one probe per round — the Theorem 3 extreme)")
    assert rp.answer_index == rs.answer_index and rp.probes == rs.probes


if __name__ == "__main__":
    main()
